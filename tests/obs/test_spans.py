"""Tests for the Observer: spans, counters, gauges, disabled no-op."""

import pytest

from repro.obs import NULL_OBSERVER, Observer
from repro.obs.spans import _NULL_SPAN


class FakeClock:
    """Deterministic monotonic clock advancing a fixed step per read."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpans:
    def test_single_span_records_elapsed(self):
        obs = Observer(clock=FakeClock(step=1.0))
        with obs.span("phase"):
            pass
        stat = obs.span_stats["phase"]
        assert stat.count == 1
        assert stat.total_s == pytest.approx(1.0)

    def test_nested_spans_build_hierarchical_paths(self):
        obs = Observer(clock=FakeClock())
        with obs.span("crawl"):
            with obs.span("day"):
                with obs.span("sweep"):
                    pass
                with obs.span("browse"):
                    pass
        assert set(obs.span_stats) == {
            "crawl",
            "crawl/day",
            "crawl/day/sweep",
            "crawl/day/browse",
        }

    def test_repeated_spans_aggregate(self):
        clock = FakeClock(step=1.0)
        obs = Observer(clock=clock)
        for _ in range(3):
            with obs.span("day"):
                clock.now += 2.0  # make the span 3s wall time
        stat = obs.span_stats["day"]
        assert stat.count == 3
        assert stat.total_s == pytest.approx(9.0)
        assert stat.min_s == pytest.approx(3.0)
        assert stat.max_s == pytest.approx(3.0)
        assert stat.mean_s == pytest.approx(3.0)

    def test_record_span_respects_current_stack(self):
        obs = Observer(clock=FakeClock())
        with obs.span("search"):
            obs.record_span("one_hop", 0.25)
            obs.record_span("one_hop", 0.75)
        stat = obs.span_stats["search/one_hop"]
        assert stat.count == 2
        assert stat.total_s == pytest.approx(1.0)
        assert stat.min_s == pytest.approx(0.25)
        assert stat.max_s == pytest.approx(0.75)

    def test_stack_unwinds_after_exception(self):
        obs = Observer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                raise RuntimeError("boom")
        with obs.span("after"):
            pass
        # "after" is a root span, not "outer/after".
        assert "after" in obs.span_stats
        assert "outer" in obs.span_stats


class TestCountersAndGauges:
    def test_count_accumulates(self):
        obs = Observer()
        obs.count("browses")
        obs.count("browses", 4)
        assert obs.counters["browses"] == 5

    def test_gauge_overwrites(self):
        obs = Observer()
        obs.gauge("rate", 0.5)
        obs.gauge("rate", 0.9)
        assert obs.gauges["rate"] == 0.9

    def test_merge_counters_prefixes_and_adds(self):
        obs = Observer()
        obs.count("faults/retries", 1)
        obs.merge_counters({"retries": 2, "drops": 3}, prefix="faults/")
        assert obs.counters == {"faults/retries": 3, "faults/drops": 3}


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        obs = Observer(enabled=False)
        assert obs.span("anything") is _NULL_SPAN
        with obs.span("anything"):
            pass
        assert obs.span_stats == {}

    def test_disabled_records_nothing(self):
        obs = Observer(enabled=False)
        obs.count("c")
        obs.gauge("g", 1.0)
        obs.record_span("s", 1.0)
        obs.merge_counters({"x": 1})
        assert obs.counters == {}
        assert obs.gauges == {}
        assert obs.span_stats == {}

    def test_null_observer_is_disabled(self):
        assert NULL_OBSERVER.enabled is False
