"""Tests for the metrics diff / perf-regression gate."""

import pytest

from repro.obs import (
    DEFAULT_TOLERANCE_SPEC,
    Histogram,
    Observer,
    RunMetrics,
    ToleranceRule,
    diff_metrics,
    parse_tolerance_spec,
)


def sample_metrics(**overrides) -> RunMetrics:
    obs = Observer(clock=iter(range(100)).__next__)
    with obs.span("crawl"):
        pass
    obs.count("search/requests", overrides.get("requests", 100))
    obs.gauge("search/hit_rate", overrides.get("hit_rate", 0.9))
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    for _ in range(overrides.get("hist_n", 5)):
        hist.record(1.5)
    metrics = obs.report(run={"command": "test"})
    metrics.histograms["search/hops"] = hist.as_dict()
    return metrics


DEFAULT_RULES = parse_tolerance_spec(DEFAULT_TOLERANCE_SPEC)


class TestSpecParsing:
    def test_default_spec_parses(self):
        rules = parse_tolerance_spec(DEFAULT_TOLERANCE_SPEC)
        assert [r.section for r in rules] == [
            "counters", "gauges", "spans", "histograms", "histograms"
        ]

    def test_glob_and_abs_floor(self):
        (rule,) = parse_tolerance_spec("spans:crawl/*=0.5:0.05")
        assert rule.pattern == "crawl/*"
        assert rule.rel == 0.5
        assert rule.abs_floor == 0.05
        assert rule.matches("spans", "crawl/day")
        assert not rule.matches("spans", "search/one_hop")
        assert not rule.matches("counters", "crawl/day")

    def test_ignore_keyword(self):
        (rule,) = parse_tolerance_spec("gauges=ignore")
        assert rule.allows(0.0, 1e9)

    def test_rejects_missing_equals(self):
        with pytest.raises(ValueError, match="selector=tolerance"):
            parse_tolerance_spec("counters")

    def test_rejects_unknown_section(self):
        with pytest.raises(ValueError, match="unknown section"):
            parse_tolerance_spec("timers=0")

    def test_rejects_non_numeric_tolerance(self):
        with pytest.raises(ValueError, match="rel"):
            parse_tolerance_spec("counters=lots")

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match=">= 0"):
            parse_tolerance_spec("counters=-1")

    def test_later_rules_override(self):
        rules = parse_tolerance_spec(
            "counters=0,counters:search/*=0.5"
        )
        base = sample_metrics()
        cur = sample_metrics(requests=120)  # +20%, within the glob's 50%
        assert diff_metrics(base, cur, rules).ok


class TestToleranceRule:
    def test_exact_by_default(self):
        rule = ToleranceRule(section="counters")
        assert rule.allows(5.0, 5.0)
        assert not rule.allows(5.0, 5.1)

    def test_relative_and_absolute_floor(self):
        rule = ToleranceRule(section="spans", rel=0.5, abs_floor=0.05)
        assert rule.allows(1.0, 1.49)
        assert not rule.allows(1.0, 1.51)
        # Near-zero baseline: the absolute floor soaks up the noise.
        assert rule.allows(0.001, 0.04)


class TestDiff:
    def test_identical_metrics_pass(self):
        diff = diff_metrics(sample_metrics(), sample_metrics(), DEFAULT_RULES)
        assert diff.ok
        assert diff.regressions == []
        assert "all metrics within tolerance" in diff.render()

    def test_counter_change_is_a_regression(self):
        diff = diff_metrics(
            sample_metrics(), sample_metrics(requests=101), DEFAULT_RULES
        )
        assert not diff.ok
        names = [e.qualified for e in diff.regressions]
        assert "counters/search/requests" in names

    def test_histogram_count_change_is_a_regression(self):
        diff = diff_metrics(
            sample_metrics(), sample_metrics(hist_n=6), DEFAULT_RULES
        )
        assert any(
            e.metric == "search/hops:count" for e in diff.regressions
        )

    def test_missing_metric_is_a_regression(self):
        base = sample_metrics()
        cur = sample_metrics()
        del cur.counters["search/requests"]
        diff = diff_metrics(base, cur, DEFAULT_RULES)
        assert not diff.ok
        entry = [e for e in diff.regressions if e.section == "counters"][0]
        assert entry.status == "missing"
        assert "gone" in entry.delta_text()

    def test_new_metric_is_informational(self):
        base = sample_metrics()
        cur = sample_metrics()
        cur.counters["search/evictions"] = 3.0
        diff = diff_metrics(base, cur, DEFAULT_RULES)
        assert diff.ok
        assert [e.metric for e in diff.new_metrics] == ["search/evictions"]
        assert "new metrics" in diff.render()

    def test_ignored_metrics_do_not_gate(self):
        rules = parse_tolerance_spec("counters=ignore,gauges=ignore,"
                                     "spans=ignore,histograms=ignore")
        diff = diff_metrics(
            sample_metrics(), sample_metrics(requests=999), rules
        )
        assert diff.ok

    def test_render_report_is_readable(self):
        diff = diff_metrics(
            sample_metrics(), sample_metrics(requests=150), DEFAULT_RULES
        )
        text = diff.render()
        assert "regressions" in text
        assert "counters/search/requests" in text
        assert "+50" in text  # the delta with its sign
