"""Edge cases of Observer.merge_from and Histogram.merge — behaviour pins.

The sharded runtime leans on these merges for worker-count invariance,
so their corner behaviour (empty operands, overflow buckets, gauge
ordering, open spans, tracer fold-in) is pinned here rather than left to
whatever the implementation happens to do.
"""

import pytest

from repro.obs import Histogram, Observer, TraceRecorder


def test_empty_into_empty_is_noop():
    a = Observer()
    b = Observer()
    a.merge_from(b)
    assert a.counters == {} and a.gauges == {} and a.span_stats == {}
    assert a.histograms == {}


def test_empty_other_leaves_self_untouched():
    a = Observer()
    a.count("c", 3)
    a.gauge("g", 1.5)
    a.hist("h", 2.0, bounds=(1.0, 4.0))
    before = (dict(a.counters), dict(a.gauges), a.histograms["h"].as_dict())
    a.merge_from(Observer())
    assert (dict(a.counters), dict(a.gauges),
            a.histograms["h"].as_dict()) == before


def test_merge_into_disabled_observer_is_noop():
    from repro.obs import NULL_OBSERVER

    b = Observer()
    b.count("c", 3)
    NULL_OBSERVER.merge_from(b)
    assert NULL_OBSERVER.counters == {}


def test_histogram_overflow_bucket_merges():
    bounds = (1.0, 2.0)
    a = Histogram(bounds)
    b = Histogram(bounds)
    a.record(100.0)  # overflow bucket (beyond the last bound)
    b.record(200.0)
    b.record(0.5)
    a.merge(b)
    assert a.count == 3
    assert a.counts[-1] == 2, "overflow bucket must accumulate"
    assert a.counts[0] == 1
    assert a.min == 0.5 and a.max == 200.0


def test_histogram_merge_empty_into_populated_keeps_min_max():
    a = Histogram((1.0, 2.0))
    a.record(1.5)
    a.merge(Histogram((1.0, 2.0)))
    assert a.count == 1 and a.min == 1.5 and a.max == 1.5


def test_histogram_merge_populated_into_empty_adopts_min_max():
    a = Histogram((1.0, 2.0))
    b = Histogram((1.0, 2.0))
    b.record(1.5)
    a.merge(b)
    assert a.count == 1 and a.min == 1.5 and a.max == 1.5


def test_histogram_merge_rejects_different_bounds():
    with pytest.raises(ValueError, match="different bounds"):
        Histogram((1.0, 2.0)).merge(Histogram((1.0, 3.0)))


def test_histogram_merge_copies_do_not_alias():
    a = Observer()
    b = Observer()
    b.hist("h", 1.5, bounds=(1.0, 2.0))
    a.merge_from(b)
    b.hist("h", 1.7, bounds=(1.0, 2.0))
    assert a.histograms["h"].count == 1, "merged histogram aliases source"


def test_gauge_last_write_wins_in_merge_order():
    a = Observer()
    b = Observer()
    a.gauge("g", 1.0)
    b.gauge("g", 2.0)
    a.merge_from(b)
    assert a.gauges["g"] == 2.0, "other's gauge must overwrite self's"


def test_merge_rejects_open_spans_on_other():
    a = Observer()
    b = Observer()
    cm = b.span("outer")
    cm.__enter__()
    with pytest.raises(ValueError, match="open spans: outer"):
        a.merge_from(b)
    cm.__exit__(None, None, None)
    a.merge_from(b)  # closed: fine now
    assert a.span_stats["outer"].count == 1


def test_merge_allows_open_spans_on_self():
    a = Observer()
    b = Observer()
    b.count("c", 1)
    with a.span("outer"):
        a.merge_from(b)
    assert a.counters["c"] == 1
    assert a.span_stats["outer"].count == 1


def test_span_min_max_fold():
    a = Observer()
    b = Observer()
    a.record_span("p", 0.5)
    b.record_span("p", 0.1)
    b.record_span("p", 0.9)
    a.merge_from(b)
    stat = a.span_stats["p"]
    assert stat.count == 3
    assert stat.min_s == 0.1 and stat.max_s == 0.9


def test_tracer_merge_rides_along_with_pid_label():
    mine = TraceRecorder(pid=1, process_name="repro")
    theirs = TraceRecorder(pid=2, process_name="shard 0")
    a = Observer(tracer=mine)
    b = Observer(tracer=theirs)
    with b.span("work"):
        pass
    a.merge_from(b, tracer_pid=5, tracer_process_name="relabelled")
    chrome = mine.to_chrome()
    events = chrome["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {(e["pid"], e["args"]["name"]) for e in meta} == {
        (1, "repro"), (5, "relabelled")
    }
    spans = [e for e in events if e["ph"] == "X"]
    assert [e["pid"] for e in spans] == [5]


def test_merge_without_tracers_is_fine():
    a = Observer()
    b = Observer(tracer=TraceRecorder(pid=2, process_name="w"))
    with b.span("work"):
        pass
    a.merge_from(b)  # self has no tracer: events dropped, aggregates kept
    assert a.span_stats["work"].count == 1
