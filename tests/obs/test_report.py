"""Tests for RunMetrics serialisation, schema validation, rendering."""

import json
import math

import pytest

from repro.obs import (
    SCHEMA_V1,
    SCHEMA_VERSION,
    Histogram,
    Observer,
    RunMetrics,
    render_profile,
    validate_metrics,
)


def sample_metrics() -> RunMetrics:
    obs = Observer(clock=iter(range(100)).__next__)
    with obs.span("crawl"):
        with obs.span("sweep"):
            pass
    obs.count("crawler/browse_attempts", 12)
    obs.gauge("faults/delivery_rate", 0.97)
    obs.hist("crawl/latency", 0.5)
    return obs.report(run={"command": "crawl", "seed": 3})


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        metrics = sample_metrics()
        again = RunMetrics.from_json(metrics.to_json())
        assert again.to_dict() == metrics.to_dict()

    def test_file_round_trip(self, tmp_path):
        metrics = sample_metrics()
        path = str(tmp_path / "metrics.json")
        metrics.write(path)
        assert RunMetrics.read(path).to_dict() == metrics.to_dict()

    def test_report_output_is_schema_valid(self):
        payload = json.loads(sample_metrics().to_json())
        assert validate_metrics(payload) == []

    def test_schema_version_is_stamped(self):
        assert sample_metrics().to_dict()["schema"] == SCHEMA_VERSION


class TestValidation:
    def test_non_object_payload(self):
        assert validate_metrics([1, 2]) != []

    def test_wrong_schema_version(self):
        payload = sample_metrics().to_dict()
        payload["schema"] = "repro.metrics/999"
        assert any("schema" in p for p in validate_metrics(payload))

    def test_missing_section(self):
        payload = sample_metrics().to_dict()
        del payload["counters"]
        assert any("counters" in p for p in validate_metrics(payload))

    def test_non_numeric_counter(self):
        payload = sample_metrics().to_dict()
        payload["counters"]["bad"] = "many"
        assert any("bad" in p for p in validate_metrics(payload))

    def test_span_missing_field(self):
        payload = sample_metrics().to_dict()
        del payload["spans"]["crawl"]["total_s"]
        assert any("total_s" in p for p in validate_metrics(payload))

    def test_span_unknown_field(self):
        payload = sample_metrics().to_dict()
        payload["spans"]["crawl"]["p99_s"] = 1.0
        assert any("p99_s" in p for p in validate_metrics(payload))

    def test_from_dict_raises_on_invalid(self):
        payload = sample_metrics().to_dict()
        payload["schema"] = "nope"
        with pytest.raises(ValueError, match="invalid metrics"):
            RunMetrics.from_dict(payload)


class TestSchemaV1Compat:
    def v1_payload(self) -> dict:
        payload = sample_metrics().to_dict()
        payload["schema"] = SCHEMA_V1
        del payload["histograms"]
        return payload

    def test_v1_payload_still_loads(self):
        metrics = RunMetrics.from_dict(self.v1_payload())
        assert metrics.schema == SCHEMA_V1
        assert metrics.histograms == {}

    def test_v1_round_trips_without_histograms_section(self):
        metrics = RunMetrics.from_dict(self.v1_payload())
        assert "histograms" not in metrics.to_dict()
        assert RunMetrics.from_json(metrics.to_json()).to_dict() == (
            metrics.to_dict()
        )

    def test_v1_with_histograms_is_invalid(self):
        payload = sample_metrics().to_dict()
        payload["schema"] = SCHEMA_V1
        assert any("histograms" in p for p in validate_metrics(payload))

    def test_v2_round_trips_histograms(self):
        metrics = sample_metrics()
        assert metrics.histograms  # sample records one
        again = RunMetrics.from_json(metrics.to_json())
        assert again.to_dict() == metrics.to_dict()
        assert again.histogram("crawl/latency").count == 1


class TestNonFinite:
    def test_to_json_refuses_nan(self):
        metrics = sample_metrics()
        metrics.gauges["bad"] = float("nan")
        with pytest.raises(ValueError):
            metrics.to_json()

    def test_to_json_refuses_infinity(self):
        metrics = sample_metrics()
        metrics.counters["bad"] = math.inf
        with pytest.raises(ValueError):
            metrics.to_json()

    @pytest.mark.parametrize("bad", [float("nan"), math.inf, -math.inf])
    def test_validate_reports_non_finite_counter(self, bad):
        payload = sample_metrics().to_dict()
        payload["counters"]["bad"] = bad
        assert any("finite" in p for p in validate_metrics(payload))

    def test_validate_reports_non_finite_span_field(self):
        payload = sample_metrics().to_dict()
        payload["spans"]["crawl"]["total_s"] = math.inf
        assert any("finite" in p for p in validate_metrics(payload))

    def test_validate_reports_non_finite_histogram_field(self):
        payload = sample_metrics().to_dict()
        payload["histograms"]["crawl/latency"]["sum"] = float("nan")
        assert any("finite" in p for p in validate_metrics(payload))

    def test_validate_reports_non_finite_run_value(self):
        payload = sample_metrics().to_dict()
        payload["run"]["seed"] = math.inf
        assert any("finite" in p for p in validate_metrics(payload))


class TestHistogramValidation:
    def test_counts_length_must_be_bounds_plus_one(self):
        payload = sample_metrics().to_dict()
        payload["histograms"]["crawl/latency"]["counts"] = [1.0]
        assert any("buckets" in p for p in validate_metrics(payload))

    def test_count_must_equal_bucket_sum(self):
        payload = sample_metrics().to_dict()
        payload["histograms"]["crawl/latency"]["count"] = 99.0
        assert any("disagrees" in p for p in validate_metrics(payload))

    def test_bounds_must_increase(self):
        payload = sample_metrics().to_dict()
        hist = payload["histograms"]["crawl/latency"]
        hist["bounds"] = [2.0, 1.0]
        hist["counts"] = [0.0, 1.0, 0.0]
        assert any("increasing" in p for p in validate_metrics(payload))

    def test_unknown_fields_are_reported(self):
        payload = sample_metrics().to_dict()
        payload["histograms"]["crawl/latency"]["p50"] = 0.5
        assert any("unknown fields" in p for p in validate_metrics(payload))


class TestRender:
    def test_profile_mentions_spans_and_counters(self):
        text = render_profile(sample_metrics())
        assert "crawl/sweep" in text
        assert "crawler/browse_attempts" in text
        assert "faults/delivery_rate" in text
        assert "command=crawl" in text

    def test_profile_shows_histograms(self):
        text = render_profile(sample_metrics())
        assert "crawl/latency" in text
        assert "p99" in text

    def test_empty_metrics_render(self):
        assert "no observability data" in render_profile(RunMetrics())

    def test_max_rows_truncates_span_table(self):
        metrics = RunMetrics(
            spans={
                f"span{i:02d}": {
                    "count": 1.0,
                    "total_s": float(100 - i),
                    "min_s": 0.0,
                    "max_s": 0.0,
                }
                for i in range(10)
            }
        )
        text = render_profile(metrics, max_rows=3)
        assert "span00" in text
        assert "span02" in text
        assert "span03" not in text

    def test_spans_sort_by_total_desc_with_stable_ties(self):
        stat = {"count": 1.0, "total_s": 1.0, "min_s": 0.0, "max_s": 0.0}
        metrics = RunMetrics(
            spans={
                "zeta": dict(stat),
                "alpha": dict(stat),
                "big": {**stat, "total_s": 5.0},
            }
        )
        text = render_profile(metrics)
        lines = [line for line in text.splitlines()
                 if line.startswith(("big", "alpha", "zeta"))]
        # Widest first; equal totals break ties by path, alphabetically.
        assert [line.split()[0] for line in lines] == [
            "big", "alpha", "zeta"
        ]

    def test_render_rehydrates_histogram_percentiles(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.record(1.5)
        metrics = RunMetrics(histograms={"h": hist.as_dict()})
        text = render_profile(metrics)
        assert "h" in text
        assert "1.5" in text  # clamped p-values equal the single sample
