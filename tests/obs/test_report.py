"""Tests for RunMetrics serialisation, schema validation, rendering."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    Observer,
    RunMetrics,
    render_profile,
    validate_metrics,
)


def sample_metrics() -> RunMetrics:
    obs = Observer(clock=iter(range(100)).__next__)
    with obs.span("crawl"):
        with obs.span("sweep"):
            pass
    obs.count("crawler/browse_attempts", 12)
    obs.gauge("faults/delivery_rate", 0.97)
    return obs.report(run={"command": "crawl", "seed": 3})


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        metrics = sample_metrics()
        again = RunMetrics.from_json(metrics.to_json())
        assert again.to_dict() == metrics.to_dict()

    def test_file_round_trip(self, tmp_path):
        metrics = sample_metrics()
        path = str(tmp_path / "metrics.json")
        metrics.write(path)
        assert RunMetrics.read(path).to_dict() == metrics.to_dict()

    def test_report_output_is_schema_valid(self):
        payload = json.loads(sample_metrics().to_json())
        assert validate_metrics(payload) == []

    def test_schema_version_is_stamped(self):
        assert sample_metrics().to_dict()["schema"] == SCHEMA_VERSION


class TestValidation:
    def test_non_object_payload(self):
        assert validate_metrics([1, 2]) != []

    def test_wrong_schema_version(self):
        payload = sample_metrics().to_dict()
        payload["schema"] = "repro.metrics/999"
        assert any("schema" in p for p in validate_metrics(payload))

    def test_missing_section(self):
        payload = sample_metrics().to_dict()
        del payload["counters"]
        assert any("counters" in p for p in validate_metrics(payload))

    def test_non_numeric_counter(self):
        payload = sample_metrics().to_dict()
        payload["counters"]["bad"] = "many"
        assert any("bad" in p for p in validate_metrics(payload))

    def test_span_missing_field(self):
        payload = sample_metrics().to_dict()
        del payload["spans"]["crawl"]["total_s"]
        assert any("total_s" in p for p in validate_metrics(payload))

    def test_span_unknown_field(self):
        payload = sample_metrics().to_dict()
        payload["spans"]["crawl"]["p99_s"] = 1.0
        assert any("p99_s" in p for p in validate_metrics(payload))

    def test_from_dict_raises_on_invalid(self):
        payload = sample_metrics().to_dict()
        payload["schema"] = "nope"
        with pytest.raises(ValueError, match="invalid metrics"):
            RunMetrics.from_dict(payload)


class TestRender:
    def test_profile_mentions_spans_and_counters(self):
        text = render_profile(sample_metrics())
        assert "crawl/sweep" in text
        assert "crawler/browse_attempts" in text
        assert "faults/delivery_rate" in text
        assert "command=crawl" in text

    def test_empty_metrics_render(self):
        assert "no observability data" in render_profile(RunMetrics())
