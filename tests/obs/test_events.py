"""Tests for the TraceRecorder ring and its Chrome trace export."""

import json

import pytest

from repro.obs import Observer, TraceRecorder, validate_chrome_trace


def fake_clock(step: float = 1.0):
    """A deterministic monotonic clock advancing ``step`` per read."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


class TestRecorder:
    def test_complete_and_instant_are_recorded(self):
        rec = TraceRecorder(clock=fake_clock())
        rec.complete("phase", start_s=2.0, dur_s=0.5)
        rec.instant("marker", args={"day": 3})
        assert len(rec) == 2

    def test_timestamps_are_relative_to_epoch_in_us(self):
        rec = TraceRecorder(clock=fake_clock())  # epoch = 1.0
        rec.complete("phase", start_s=2.0, dur_s=0.5)
        events = rec.to_chrome()["traceEvents"]
        span = [e for e in events if e["ph"] == "X"][0]
        assert span["ts"] == pytest.approx(1e6)   # (2.0 - 1.0) s
        assert span["dur"] == pytest.approx(5e5)  # 0.5 s

    def test_ring_bound_drops_oldest_and_counts(self):
        rec = TraceRecorder(clock=fake_clock(), max_events=3)
        for index in range(5):
            rec.instant(f"e{index}")
        assert len(rec) == 3
        assert rec.dropped == 2
        names = [
            e["name"]
            for e in rec.to_chrome()["traceEvents"]
            if e["ph"] == "i"
        ]
        assert names == ["e2", "e3", "e4"]  # the newest events win
        assert rec.to_chrome()["otherData"]["dropped_events"] == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)


class TestChromeExport:
    def test_export_is_schema_valid(self):
        rec = TraceRecorder(clock=fake_clock())
        rec.complete("outer", start_s=2.0, dur_s=1.0)
        rec.instant("hop", cat="hop")
        payload = json.loads(rec.to_chrome_json())
        assert validate_chrome_trace(payload) == []

    def test_complete_events_carry_dur_instants_carry_scope(self):
        rec = TraceRecorder(clock=fake_clock())
        rec.complete("span", start_s=2.0, dur_s=0.1)
        rec.instant("point")
        by_ph = {e["ph"]: e for e in rec.to_chrome()["traceEvents"]}
        assert "dur" in by_ph["X"]
        assert by_ph["i"]["s"] == "t"
        assert by_ph["M"]["name"] == "process_name"

    def test_args_are_passed_through(self):
        rec = TraceRecorder(clock=fake_clock())
        rec.instant("query", args={"outcome": "one_hop", "hops": 2})
        event = [
            e for e in rec.to_chrome()["traceEvents"] if e["ph"] == "i"
        ][0]
        assert event["args"] == {"outcome": "one_hop", "hops": 2}

    def test_write_round_trips(self, tmp_path):
        rec = TraceRecorder(clock=fake_clock())
        rec.complete("phase", start_s=2.0, dur_s=0.5)
        path = tmp_path / "trace.json"
        rec.write_chrome(str(path))
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_validator_catches_malformed_events(self):
        assert validate_chrome_trace([1]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"ph": "X", "name": "n", "ts": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(bad))
        bad = {"traceEvents": [{"name": "n", "ts": 0}]}
        assert any("ph" in p for p in validate_chrome_trace(bad))


class TestObserverIntegration:
    def test_closed_spans_emit_nested_complete_events(self):
        clock = fake_clock()
        rec = TraceRecorder(clock=clock)
        obs = Observer(clock=clock, tracer=rec)
        with obs.span("crawl"):
            with obs.span("day"):
                pass
        names = [
            e["name"]
            for e in rec.to_chrome()["traceEvents"]
            if e["ph"] == "X"
        ]
        # Inner span closes first; paths carry the hierarchy.
        assert names == ["crawl/day", "crawl"]
        spans = {
            e["name"]: e
            for e in rec.to_chrome()["traceEvents"]
            if e["ph"] == "X"
        }
        # Proper nesting: the child interval lies inside the parent's.
        child, parent = spans["crawl/day"], spans["crawl"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"]

    def test_instants_join_the_current_span_path(self):
        clock = fake_clock()
        rec = TraceRecorder(clock=clock)
        obs = Observer(clock=clock, tracer=rec)
        with obs.span("crawl"):
            obs.instant("hop", cat="hop")
        event = [
            e for e in rec.to_chrome()["traceEvents"] if e["ph"] == "i"
        ][0]
        assert event["name"] == "crawl/hop"
        assert event["cat"] == "hop"

    def test_instant_is_noop_without_tracer(self):
        obs = Observer()
        obs.instant("hop")  # must not raise
        assert obs.tracer is None

    def test_record_span_with_start_lands_on_the_timeline(self):
        clock = fake_clock()
        rec = TraceRecorder(clock=clock)
        obs = Observer(clock=clock, tracer=rec)
        obs.record_span("one_hop", 0.25, start_s=2.0)
        obs.record_span("untimed", 0.25)  # no start -> aggregate only
        names = [
            e["name"]
            for e in rec.to_chrome()["traceEvents"]
            if e["ph"] == "X"
        ]
        assert names == ["one_hop"]
        assert obs.span_stats["untimed"].count == 1
