"""Flight recorder: snapshot schema, crash tails, reader and validator."""

import json
import os
import time

import pytest

from repro.obs import Observer
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    FlightRecorder,
    TelemetrySpec,
    read_telemetry,
    validate_telemetry,
    validate_telemetry_record,
)


def _read_lines(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_start_snapshot_end_lifecycle(tmp_path):
    path = str(tmp_path / "t.jsonl")
    obs = Observer()
    recorder = FlightRecorder(path, obs=obs, interval_s=60.0, source="main",
                              run={"experiment": "x", "seed": 7})
    recorder.start()
    recorder.close(outcome="completed")
    records = _read_lines(path)
    kinds = [r["kind"] for r in records]
    assert kinds == ["start", "snapshot", "end"]
    start, snapshot, end = records
    assert start["run"] == {"experiment": "x", "seed": 7}
    assert start["interval_s"] == 60.0
    assert snapshot["seq"] == 0 and end["seq"] == 1
    assert end["outcome"] == "completed"
    for record in records:
        assert record["schema"] == TELEMETRY_SCHEMA
        assert record["source"] == "main"
        assert record["pid"] == os.getpid()
        assert validate_telemetry_record(record) == [], record


def test_progress_merges_gauges_and_updates(tmp_path):
    path = str(tmp_path / "t.jsonl")
    obs = Observer()
    obs.gauge("progress/days_done", 2)
    obs.gauge("progress/days_total", 5)
    obs.gauge("unrelated/gauge", 9)
    recorder = FlightRecorder(path, obs=obs, interval_s=60.0)
    recorder.update(days_done=3, phase=1)
    record = recorder.snapshot_now()
    # Explicit update wins the tie; non-progress gauges stay out.
    assert record["progress"] == {
        "days_done": 3.0, "days_total": 5.0, "phase": 1.0
    }
    recorder.close()


def test_top_spans_ordering(tmp_path):
    obs = Observer()
    with obs.span("slow"):
        time.sleep(0.02)
    with obs.span("fast"):
        pass
    recorder = FlightRecorder(str(tmp_path / "t.jsonl"), obs=obs,
                              interval_s=60.0)
    record = recorder.snapshot_now()
    paths = [entry[0] for entry in record["top_spans"]]
    assert paths[0] == "slow"
    assert set(paths) == {"slow", "fast"}
    for _path, count, total_s in record["top_spans"]:
        assert count >= 1 and total_s >= 0.0
    recorder.close()


def test_close_is_idempotent_and_folds_resource_gauges(tmp_path):
    path = str(tmp_path / "t.jsonl")
    obs = Observer()
    recorder = FlightRecorder(path, obs=obs, interval_s=60.0, source="main")
    recorder.start()
    recorder.close()
    recorder.close(outcome="failed")  # no second end line
    records = _read_lines(path)
    assert [r["kind"] for r in records].count("end") == 1
    assert obs.gauges["resource/rss_max_bytes"] > 0
    assert "resource/samples" in obs.gauges


def test_worker_source_prefixes_resource_gauges(tmp_path):
    obs = Observer()
    recorder = FlightRecorder(str(tmp_path / "t.jsonl"), obs=obs,
                              interval_s=60.0, source="shard 1")
    recorder.start()
    recorder.close()
    assert "resource/shard 1/rss_max_bytes" in obs.gauges
    assert "resource/rss_max_bytes" not in obs.gauges


def test_thread_snapshots_periodically(tmp_path):
    path = str(tmp_path / "t.jsonl")
    recorder = FlightRecorder(path, interval_s=0.01)
    recorder.start()
    deadline = time.monotonic() + 2.0
    while recorder.seq < 3 and time.monotonic() < deadline:
        time.sleep(0.01)
    recorder.close()
    records, truncated = read_telemetry(path)
    assert not truncated
    snapshots = [r for r in records if r["kind"] == "snapshot"]
    assert len(snapshots) >= 3
    assert [r["seq"] for r in snapshots] == list(range(len(snapshots)))


def test_write_failure_never_raises(tmp_path):
    missing = str(tmp_path / "gone" / "t.jsonl")
    recorder = FlightRecorder(missing, interval_s=60.0)
    recorder.snapshot_now()  # directory does not exist: swallowed
    recorder.close()
    assert not os.path.exists(missing)


def test_read_telemetry_tolerates_torn_tail(tmp_path):
    path = str(tmp_path / "t.jsonl")
    good = json.dumps({"schema": TELEMETRY_SCHEMA, "kind": "start"})
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(good + "\n")
        fh.write('{"schema": "repro.telem')  # torn mid-write
    records, truncated = read_telemetry(path)
    assert truncated
    assert len(records) == 1


def test_read_telemetry_raises_on_midfile_corruption(tmp_path):
    path = str(tmp_path / "t.jsonl")
    good = json.dumps({"schema": TELEMETRY_SCHEMA, "kind": "start"})
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write(good + "\n")
    with pytest.raises(ValueError, match="non-final"):
        read_telemetry(path)


def test_validate_telemetry(tmp_path):
    path = str(tmp_path / "t.jsonl")
    recorder = FlightRecorder(path, interval_s=60.0)
    recorder.start()
    recorder.close()
    assert validate_telemetry(path) == []

    empty = str(tmp_path / "empty.jsonl")
    open(empty, "w").close()
    assert validate_telemetry(empty) != []

    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"schema": "other", "kind": "mystery"}) + "\n")
    problems = validate_telemetry(bad)
    assert any("schema" in p for p in problems)
    assert any("kind" in p for p in problems)


def test_spec_is_frozen_and_picklable():
    import pickle

    spec = TelemetrySpec("/tmp/t.jsonl", interval_s=0.5)
    assert pickle.loads(pickle.dumps(spec)) == spec
    with pytest.raises(Exception):
        spec.path = "/other"


def test_interval_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        FlightRecorder(str(tmp_path / "t.jsonl"), interval_s=0.0)
