"""Tests for the fixed-bucket Histogram and its bucket ladders."""

import pytest

from repro.obs import COUNT_BOUNDS, Histogram, LATENCY_BOUNDS_S, log_bounds


class TestLogBounds:
    def test_doubles_from_lo_past_hi(self):
        assert log_bounds(1.0, 8.0) == (1.0, 2.0, 4.0, 8.0)

    def test_final_bound_covers_hi(self):
        bounds = log_bounds(1.0, 5.0)
        assert bounds[-1] >= 5.0

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(2.0, 1.0)
        with pytest.raises(ValueError):
            log_bounds(1.0, 8.0, growth=1.0)

    def test_standard_ladders_cover_their_ranges(self):
        assert LATENCY_BOUNDS_S[0] == 1e-6
        assert LATENCY_BOUNDS_S[-1] >= 16.0
        assert COUNT_BOUNDS == tuple(float(2 ** i) for i in range(13))


class TestRecord:
    def test_tracks_count_sum_min_max(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 3.0, 1.5):
            hist.record(value)
        assert hist.count == 3
        assert hist.total == 5.0
        assert hist.min == 0.5
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(5.0 / 3)

    def test_bucketing_first_bound_gte_value(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        hist.record(1.0)   # exactly on a bound -> that bucket
        hist.record(1.5)   # between bounds -> next bucket up
        hist.record(9.0)   # above the last bound -> overflow
        assert hist.counts == [1, 1, 0, 1]

    def test_overflow_bucket_exists(self):
        hist = Histogram(bounds=(1.0,))
        assert len(hist.counts) == 2
        hist.record(100.0)
        assert hist.counts == [0, 1]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))


class TestPercentiles:
    def test_empty_histogram_is_zero(self):
        assert Histogram().percentile(0.99) == 0.0
        assert Histogram().summary()["p50"] == 0.0

    def test_clamped_to_observed_min_max(self):
        hist = Histogram(bounds=(1.0, 1024.0))
        hist.record(3.0)
        assert hist.percentile(0.0) >= hist.min
        assert hist.percentile(1.0) <= hist.max

    def test_overflow_percentile_is_max(self):
        hist = Histogram(bounds=(1.0,))
        hist.record(50.0)
        assert hist.percentile(0.99) == 50.0

    def test_median_lands_in_the_right_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 0.5, 0.5, 3.0, 7.0):
            hist.record(value)
        p50 = hist.percentile(0.50)
        assert p50 <= 1.0  # three of five values are in the first bucket
        p90 = hist.percentile(0.90)
        assert 4.0 < p90 <= 8.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_summary_keys(self):
        hist = Histogram()
        hist.record(0.5)
        assert set(hist.summary()) == {
            "count", "mean", "p50", "p90", "p99", "max"
        }


class TestSerialisation:
    def test_round_trip_preserves_everything(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.record(value)
        again = Histogram.from_dict(hist.as_dict())
        assert again.as_dict() == hist.as_dict()
        assert again.percentile(0.9) == hist.percentile(0.9)

    def test_from_dict_rejects_wrong_bucket_count(self):
        payload = Histogram(bounds=(1.0, 2.0)).as_dict()
        payload["counts"] = [0.0, 0.0]  # needs len(bounds)+1 == 3
        with pytest.raises(ValueError, match="entries"):
            Histogram.from_dict(payload)
