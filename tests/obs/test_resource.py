"""Resource sampler: /proc readers, fallback, and the sampling thread."""

import time

import pytest

from repro.obs.resource import (
    DEFAULT_MAX_SAMPLES,
    ResourceSample,
    ResourceSampler,
    read_resource_sample,
)


def test_read_resource_sample_never_raises():
    sample = read_resource_sample()
    assert isinstance(sample, ResourceSample)
    # A live Python process certainly occupies memory and has burned CPU.
    assert sample.rss_bytes > 0
    assert sample.cpu_s >= 0.0


def test_sample_as_dict_all_float():
    sample = read_resource_sample()
    payload = sample.as_dict()
    assert payload, "empty sample dict"
    assert all(isinstance(v, float) for v in payload.values()), payload
    assert "rss_bytes" in payload


def test_sample_now_appends_series():
    sampler = ResourceSampler(interval_s=0.01)
    assert sampler.latest() is None
    sampler.sample_now()
    sampler.sample_now()
    series = sampler.series()
    assert len(series) == 2
    ts0, _s0 = series[0]
    ts1, _s1 = series[1]
    assert ts1 >= ts0
    assert sampler.latest() is series[-1][1]


def test_sampler_thread_collects_and_stops():
    sampler = ResourceSampler(interval_s=0.01)
    sampler.start()
    try:
        deadline = time.monotonic() + 2.0
        while len(sampler.series()) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        sampler.stop()
    assert len(sampler.series()) >= 3
    count = len(sampler.series())
    time.sleep(0.05)
    assert len(sampler.series()) == count, "sampler kept running after stop"


def test_sampler_bounded_memory():
    sampler = ResourceSampler(interval_s=0.01, max_samples=4)
    for _ in range(10):
        sampler.sample_now()
    assert len(sampler.series()) == 4
    assert sampler.series()[-1][1] is sampler.latest()
    assert DEFAULT_MAX_SAMPLES >= 1024


def test_summary_gauges_shape():
    sampler = ResourceSampler(interval_s=0.01)
    sampler.sample_now()
    gauges = sampler.summary_gauges(prefix="resource/")
    assert gauges["resource/samples"] == 1.0
    assert gauges["resource/rss_max_bytes"] > 0
    assert set(gauges) == {
        "resource/rss_max_bytes",
        "resource/rss_last_bytes",
        "resource/cpu_user_s",
        "resource/cpu_system_s",
        "resource/io_read_bytes",
        "resource/io_write_bytes",
        "resource/gc_collections",
        "resource/samples",
    }


def test_summary_gauges_empty_without_samples():
    sampler = ResourceSampler()
    assert sampler.summary_gauges() == {}


def test_cpu_percent_requires_two_samples():
    clock_values = iter([0.0, 1.0])
    sampler = ResourceSampler(clock=lambda: next(clock_values))
    sampler.sample_now()
    assert sampler.cpu_percent() == 0.0
    sampler.sample_now()
    assert sampler.cpu_percent() >= 0.0


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        ResourceSampler(interval_s=0.0)
