"""The determinism contract: observability must never perturb a run.

Enabling spans/counters may not change a single byte of a seeded crawl
trace or a single outcome of a seeded search — the Observer draws no
randomness and feeds nothing back into simulation state.  These tests
run the same seeded workload with observability off and on and assert
byte-identical/equal results, plus that the enabled run actually
recorded something (so the neutrality is not vacuous).
"""

import dataclasses

from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.runtime.scale import Scale, workload_config
from repro.faults import FaultConfig, RetryPolicy
from repro.obs import Observer, TraceRecorder
from repro.trace.io import dumps_trace
from tests.conftest import build_static

SEED = 11


def crawl_network_config(faults: FaultConfig = None) -> NetworkConfig:
    workload = dataclasses.replace(
        workload_config(Scale.SMALL),
        num_clients=50,
        num_files=750,
        days=3,
        mainstream_pool_size=50,
    )
    return NetworkConfig(
        workload=workload, faults=faults or FaultConfig()
    )


def run_crawl(obs=None, faults=None, retry=None):
    network = build_network(crawl_network_config(faults), seed=SEED, obs=obs)
    crawler = Crawler(
        network, CrawlerConfig(days=3, retry=retry), seed=SEED
    )
    trace = crawler.crawl()
    return crawler, trace


class TestCrawlNeutrality:
    def test_seeded_crawl_is_byte_identical_with_obs_on(self):
        _, plain = run_crawl(obs=None)
        obs = Observer()
        crawler, observed = run_crawl(obs=obs)
        assert dumps_trace(observed) == dumps_trace(plain)
        # The observed run really recorded the crawl phases.
        assert "crawl/day/sweep_nicknames" in obs.span_stats
        assert obs.counters["crawler/browse_attempts"] == float(
            crawler.stats.browse_attempts
        )

    def test_faulty_crawl_is_byte_identical_with_obs_on(self):
        faults = FaultConfig(loss_rate=0.1, server_crash_day=1)
        retry = RetryPolicy(max_retries=2)
        plain_crawler, plain = run_crawl(obs=None, faults=faults, retry=retry)
        obs = Observer()
        crawler, observed = run_crawl(obs=obs, faults=faults, retry=retry)
        assert dumps_trace(observed) == dumps_trace(plain)
        assert crawler.stats == plain_crawler.stats
        assert (
            crawler.network.faults.stats == plain_crawler.network.faults.stats
        )
        # Fault accounting is unified into the metrics counters.
        assert obs.counters["faults/messages_dropped"] == float(
            crawler.network.faults.stats.messages_dropped
        )
        assert "faults/delivery_rate" in obs.gauges


class TestSearchNeutrality:
    def test_seeded_search_results_identical_with_obs_on(self):
        trace = build_static(
            {i: [f"f{j}" for j in range(i % 7 + 3)] for i in range(30)}
        )
        config = SearchConfig(list_size=4, seed=SEED)
        plain = simulate_search(trace, config)
        obs = Observer()
        observed = simulate_search(trace, config, obs=obs)
        assert observed.rates == plain.rates
        assert observed.load.messages == plain.load.messages
        assert observed.probes_lost == plain.probes_lost
        assert obs.counters["search/requests"] == float(plain.rates.requests)
        assert "search/one_hop" in obs.span_stats

    def test_two_hop_search_identical_with_obs_on(self):
        trace = build_static(
            {i: [f"f{j}" for j in range(8)] for i in range(12)}
        )
        config = SearchConfig(list_size=3, two_hop=True, seed=SEED)
        plain = simulate_search(trace, config)
        observed = simulate_search(trace, config, obs=Observer())
        assert observed.rates == plain.rates


class TestTracingNeutrality:
    """Attaching an event tracer must be as invisible as the Observer."""

    def test_seeded_crawl_is_byte_identical_with_tracer_on(self):
        _, plain = run_crawl(obs=Observer())
        tracer = TraceRecorder()
        _, traced = run_crawl(obs=Observer(tracer=tracer))
        assert dumps_trace(traced) == dumps_trace(plain)
        # The traced run really captured events (hops, day markers, spans).
        assert len(tracer) > 0
        cats = {e[2] for e in tracer._events}
        assert "crawl" in cats  # day_start markers
        assert "hop" in cats    # message hops

    def test_two_hop_search_identical_with_tracer_on(self):
        trace = build_static(
            {i: [f"f{j}" for j in range(8)] for i in range(12)}
        )
        config = SearchConfig(list_size=3, two_hop=True, seed=SEED)
        plain = simulate_search(trace, config, obs=Observer())
        tracer = TraceRecorder()
        traced = simulate_search(
            trace, config, obs=Observer(tracer=tracer)
        )
        assert traced.rates == plain.rates
        assert any(e[2] == "query" for e in tracer._events)
