"""The leveled stderr logger behind REPRO_LOG."""

import io

from repro.obs.log import LEVELS, Log, log_level, set_context


def test_levels_ordering():
    assert LEVELS["debug"] < LEVELS["info"] < LEVELS["quiet"]


def test_log_level_reads_env_at_call_time(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    assert log_level() == LEVELS["info"]
    monkeypatch.setenv("REPRO_LOG", "debug")
    assert log_level() == LEVELS["debug"]
    monkeypatch.setenv("REPRO_LOG", "quiet")
    assert log_level() == LEVELS["quiet"]
    monkeypatch.setenv("REPRO_LOG", "bogus")
    assert log_level() == LEVELS["info"], "unknown level falls back to info"


def test_info_suppressed_under_quiet(monkeypatch):
    stream = io.StringIO()
    log = Log(stream=stream)
    monkeypatch.setenv("REPRO_LOG", "quiet")
    log.info("hidden")
    log.debug("hidden too")
    assert stream.getvalue() == ""


def test_debug_only_at_debug_level(monkeypatch):
    stream = io.StringIO()
    log = Log(stream=stream)
    monkeypatch.setenv("REPRO_LOG", "info")
    log.debug("hidden")
    log.info("shown")
    assert stream.getvalue() == "shown\n"
    monkeypatch.setenv("REPRO_LOG", "debug")
    log.debug("now shown")
    assert stream.getvalue() == "shown\nnow shown\n"


def test_context_prefix(monkeypatch):
    stream = io.StringIO()
    log = Log(stream=stream)
    monkeypatch.setenv("REPRO_LOG", "info")
    set_context("shard 2")
    try:
        log.info("working")
    finally:
        set_context(None)
    assert stream.getvalue() == "[shard 2] working\n"
    log.info("after clear")
    assert stream.getvalue().endswith("after clear\n")
    assert "[shard 2] after clear" not in stream.getvalue()


def test_single_write_per_line(monkeypatch):
    writes = []

    class Recorder(io.StringIO):
        def write(self, text):
            writes.append(text)
            return super().write(text)

    monkeypatch.setenv("REPRO_LOG", "info")
    log = Log(stream=Recorder())
    log.info("one line")
    assert writes == ["one line\n"], "prefix+message+newline must be one write"
