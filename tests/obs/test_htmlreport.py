"""HTML run report: standalone output, section selection, escaping."""

import json

from repro.obs import Observer
from repro.obs.htmlreport import render_report, write_report


def _telemetry_records():
    return [
        {"schema": "repro.telemetry/1", "kind": "start", "ts": 1.0,
         "mono_s": 10.0, "source": "main", "pid": 1, "interval_s": 1.0,
         "run": {"experiment": "replica_dist"}},
        {"schema": "repro.telemetry/1", "kind": "snapshot", "seq": 0,
         "ts": 1.0, "mono_s": 10.0, "source": "main", "pid": 1,
         "heartbeat_s": 0.0, "progress": {"days_done": 1.0},
         "resource": {"rss_bytes": 1e7, "cpu_user_s": 0.1,
                      "cpu_system_s": 0.0},
         "top_spans": [["crawl", 1, 0.5]]},
        {"schema": "repro.telemetry/1", "kind": "end", "seq": 1, "ts": 2.0,
         "mono_s": 11.0, "source": "main", "pid": 1, "heartbeat_s": 1.0,
         "progress": {"days_done": 3.0},
         "resource": {"rss_bytes": 2e7, "cpu_user_s": 0.4,
                      "cpu_system_s": 0.1},
         "top_spans": [], "outcome": "completed"},
    ]


def _metrics():
    obs = Observer()
    with obs.span("crawl"):
        pass
    obs.hist("search/hops", 2.0, bounds=(1.0, 2.0, 4.0))
    return obs.report(run={"command": "crawl", "seed": 42})


def test_report_is_standalone_html():
    html = render_report(metrics=_metrics(), telemetry=_telemetry_records())
    assert html.startswith("<!DOCTYPE html>")
    assert "</html>" in html
    # No network assets of any kind.
    for needle in ("http://", "https://", "<script", "@import", "url("):
        assert needle not in html, needle
    # Light and dark schemes are both defined.
    assert "prefers-color-scheme: dark" in html
    assert "color-scheme: light" in html


def test_sections_follow_inputs():
    only_metrics = render_report(metrics=_metrics())
    assert "Top spans" in only_metrics
    assert "Histogram percentiles" in only_metrics
    assert "Resident set size" not in only_metrics

    only_telemetry = render_report(telemetry=_telemetry_records())
    assert "Resident set size" in only_telemetry
    assert "Run outcome" in only_telemetry
    assert "Top spans by total time" not in only_telemetry

    neither = render_report()
    assert "No renderable data" in neither


def test_trace_section_lanes_per_process():
    trace = {"traceEvents": [
        {"ph": "M", "name": "process_name", "pid": 1,
         "args": {"name": "repro"}},
        {"ph": "M", "name": "process_name", "pid": 2,
         "args": {"name": "shard 0"}},
        {"ph": "X", "name": "crawl/day", "pid": 1, "tid": 1,
         "ts": 0.0, "dur": 5000.0},
        {"ph": "X", "name": "crawl/day", "pid": 2, "tid": 1,
         "ts": 1000.0, "dur": 2000.0},
    ]}
    html = render_report(trace=trace)
    assert "Trace timeline" in html
    assert "shard 0" in html and "repro" in html


def test_titles_and_names_are_escaped():
    html = render_report(
        telemetry=[{"schema": "repro.telemetry/1", "kind": "start",
                    "ts": 1.0, "mono_s": 1.0,
                    "source": "<script>alert(1)</script>", "pid": 1,
                    "interval_s": 1.0, "run": {}}],
        title="<b>bold</b>",
    )
    assert "<script>alert(1)</script>" not in html
    assert "<b>bold</b>" not in html
    assert "&lt;b&gt;bold&lt;/b&gt;" in html


def test_every_chart_has_table_view_and_tooltips():
    html = render_report(metrics=_metrics(), telemetry=_telemetry_records())
    assert "<table>" in html
    assert "<title>" in html  # SVG hover tooltips
    assert 'role="img"' in html


def test_write_report(tmp_path):
    path = str(tmp_path / "report.html")
    write_report(path, telemetry=_telemetry_records(), title="t")
    with open(path, "r", encoding="utf-8") as fh:
        content = fh.read()
    assert content.startswith("<!DOCTYPE html>")


def test_metrics_accepts_plain_dict():
    payload = _metrics().to_dict()
    html = render_report(metrics=json.loads(json.dumps(payload)))
    assert "Top spans" in html
