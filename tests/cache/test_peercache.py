"""Tests for the AS-level PeerCache simulation."""

import pytest

from repro.cache.peercache import (
    AsContentCache,
    AsIndexCache,
    PeerCacheConfig,
    simulate_peercache,
)
from tests.conftest import build_static, make_client, make_file

MB = 1024 * 1024


class TestAsIndexCache:
    def test_publish_and_lookup(self):
        cache = AsIndexCache(3320)
        cache.publish(1, "f")
        assert cache.lookup("f")
        assert not cache.lookup("missing")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_exclude_self(self):
        cache = AsIndexCache(3320)
        cache.publish(1, "f")
        assert not cache.lookup("f", exclude=1)
        cache.publish(2, "f")
        assert cache.lookup("f", exclude=1)

    def test_hit_rate(self):
        cache = AsIndexCache(1)
        assert cache.hit_rate == 0.0
        cache.publish(1, "f")
        cache.lookup("f")
        cache.lookup("g")
        assert cache.hit_rate == 0.5

    def test_index_entries(self):
        cache = AsIndexCache(1)
        cache.publish(1, "f")
        cache.publish(2, "f")
        cache.publish(1, "g")
        assert cache.index_entries() == 3


class TestAsContentCache:
    def test_miss_then_hit(self):
        cache = AsContentCache(1, capacity_bytes=10 * MB)
        assert not cache.request("f", 1 * MB)
        assert cache.request("f", 1 * MB)
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = AsContentCache(1, capacity_bytes=2 * MB)
        cache.request("a", MB)
        cache.request("b", MB)
        cache.request("a", MB)  # refresh a
        cache.request("c", MB)  # evicts b (LRU)
        assert cache.request("a", MB)  # hit
        assert not cache.request("b", MB)  # evicted
        assert cache.evictions >= 1

    def test_oversized_file_not_stored(self):
        cache = AsContentCache(1, capacity_bytes=MB)
        assert not cache.request("huge", 10 * MB)
        assert not cache.request("huge", 10 * MB)
        assert cache.used_bytes == 0

    def test_byte_hit_rate(self):
        cache = AsContentCache(1, capacity_bytes=10 * MB)
        cache.request("f", 4 * MB)
        cache.request("f", 4 * MB)
        assert cache.byte_hit_rate() == pytest.approx(0.5)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AsContentCache(1, capacity_bytes=0)


class TestConfig:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            PeerCacheConfig(mode="hybrid")

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PeerCacheConfig(capacity_bytes=0)


def geo_static():
    """Two ASes; AS 1 is a tight community, AS 2 holds unrelated files."""
    clients = [
        make_client(0, asn=1),
        make_client(1, asn=1),
        make_client(2, asn=1),
        make_client(3, asn=2),
        make_client(4, asn=2),
    ]
    caches = {
        0: ["shared-a", "shared-b"],
        1: ["shared-a", "shared-b"],
        2: ["shared-a"],
        3: ["other-x"],
        4: ["other-y"],
    }
    files = [make_file(f, size=MB) for f in
             ("shared-a", "shared-b", "other-x", "other-y")]
    return build_static(caches, clients=clients, files=files)


class TestSimulation:
    def test_index_mode_finds_local_sources(self):
        result = simulate_peercache(geo_static(), PeerCacheConfig(mode="index", seed=1))
        # All actual requests are for shared-a / shared-b inside AS 1.
        assert result.requests == 3
        assert result.hit_rate == 1.0
        assert result.byte_locality == 1.0

    def test_no_local_sources_no_hits(self):
        clients = [make_client(0, asn=1), make_client(1, asn=2)]
        static = build_static(
            {0: ["f"], 1: ["f"]},
            clients=clients,
            files=[make_file("f", size=MB)],
        )
        result = simulate_peercache(static, PeerCacheConfig(mode="index", seed=1))
        assert result.requests == 1
        assert result.hit_rate == 0.0

    def test_requester_becomes_local_source(self):
        """After a cross-AS fetch the file is published locally, so a
        second local requester hits."""
        clients = [
            make_client(0, asn=1),
            make_client(1, asn=2),
            make_client(2, asn=2),
        ]
        static = build_static(
            {0: ["f"], 1: ["f"], 2: ["f"]},
            clients=clients,
            files=[make_file("f", size=MB)],
        )
        result = simulate_peercache(static, PeerCacheConfig(mode="index", seed=1))
        assert result.requests == 2
        assert result.intra_as_hits >= 1

    def test_content_mode_counts_bytes(self):
        result = simulate_peercache(
            geo_static(),
            PeerCacheConfig(mode="content", capacity_bytes=100 * MB, seed=1),
        )
        assert result.mode == "content"
        assert result.bytes_total > 0
        assert 0.0 <= result.byte_locality <= 1.0

    def test_per_as_breakdown(self):
        result = simulate_peercache(geo_static(), PeerCacheConfig(mode="index", seed=1))
        rows = result.top_as_rows(2)
        assert rows[0][0] == 1  # AS 1 is the busiest
        assert rows[0][2] == 1.0

    def test_geo_clustering_raises_locality(self, small_static_trace):
        """On a generated workload, index-mode locality is well above the
        no-structure floor (the experiment asserts the ablation gap)."""
        result = simulate_peercache(
            small_static_trace, PeerCacheConfig(mode="index", seed=2)
        )
        assert result.hit_rate > 0.1


class TestExperiment:
    def test_run_peercache_small(self):
        from repro.runtime.scale import Scale
        from repro.experiments.peercache_experiments import run_peercache

        result = run_peercache(scale=Scale.SMALL)
        assert result.metric("geo_clustering_gain") > 0.0
        assert (
            result.metric("index_hit_rate")
            > result.metric("index_hit_rate_no_geo")
        )
        assert 0.0 <= result.metric("content_hit_rate") <= 1.0
