"""Tests for hit-rate and load accounting."""

import pytest

from repro.core.metrics import HitRateAccumulator, LoadTracker


class TestHitRateAccumulator:
    def test_zero_requests(self):
        rates = HitRateAccumulator()
        assert rates.hit_rate == 0.0
        assert rates.one_hop_hit_rate == 0.0
        assert rates.misses == 0

    def test_rates(self):
        rates = HitRateAccumulator(
            requests=10, hits=4, one_hop_hits=3, two_hop_hits=1
        )
        assert rates.hit_rate == pytest.approx(0.4)
        assert rates.one_hop_hit_rate == pytest.approx(0.3)
        assert rates.misses == 6


class TestLoadTracker:
    def test_record_and_totals(self):
        load = LoadTracker()
        load.record(1)
        load.record(1, count=2)
        load.record(2)
        assert load.total_messages == 4
        assert load.num_loaded_clients == 2
        assert load.max_load == 3
        assert load.mean_load() == pytest.approx(2.0)

    def test_empty(self):
        load = LoadTracker()
        assert load.max_load == 0
        assert load.mean_load() == 0.0
        assert load.by_rank() == []

    def test_by_rank_sorted(self):
        load = LoadTracker()
        for target, count in ((1, 5), (2, 9), (3, 1)):
            load.record(target, count)
        ranks = load.by_rank()
        assert [value for _, value in ranks] == [9, 5, 1]
        assert [rank for rank, _ in ranks] == [0, 1, 2]

    def test_rank_series(self):
        load = LoadTracker()
        load.record(1, 3)
        load.record(2, 7)
        series = load.rank_series(name="x")
        assert series.name == "x"
        assert series.ys == [7.0, 3.0]

    def test_top_loads(self):
        load = LoadTracker()
        for target, count in ((1, 5), (2, 9), (3, 1), (4, 7)):
            load.record(target, count)
        assert load.top_loads(2) == [9, 7]
