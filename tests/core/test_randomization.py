"""Tests for the appendix trace-randomization algorithm."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.randomization import (
    _SwapState,
    randomization_schedule,
    randomize_trace,
)
from repro.util.rng import RngStream
from repro.util.zipf import swap_iterations
from tests.conftest import build_static


def generosity_vector(trace):
    return {c: len(cache) for c, cache in trace.caches.items()}


def popularity_vector(trace):
    return trace.replica_counts()


class TestInvariants:
    def test_preserves_generosity_and_popularity(self):
        trace = build_static(
            {
                0: ["a", "b", "c"],
                1: ["a", "d"],
                2: ["b", "e", "f", "g"],
                3: ["a"],
                4: [],
            }
        )
        randomized = randomize_trace(trace, RngStream(0))
        assert generosity_vector(randomized) == generosity_vector(trace)
        assert popularity_vector(randomized) == popularity_vector(trace)

    def test_no_duplicate_files_in_cache(self):
        trace = build_static(
            {i: [f"f{j}" for j in range(i + 1)] for i in range(8)}
        )
        randomized = randomize_trace(trace, RngStream(1))
        for cache in randomized.caches.values():
            assert len(cache) == len(set(cache))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_invariants_any_seed(self, seed):
        trace = build_static(
            {
                0: ["a", "b"],
                1: ["b", "c", "d"],
                2: ["a", "c"],
                3: ["e"],
            }
        )
        randomized = randomize_trace(trace, RngStream(seed))
        assert generosity_vector(randomized) == generosity_vector(trace)
        assert popularity_vector(randomized) == popularity_vector(trace)

    def test_empty_trace(self):
        trace = build_static({0: [], 1: []})
        randomized = randomize_trace(trace, RngStream(0))
        assert all(not cache for cache in randomized.caches.values())

    def test_metadata_shared(self):
        trace = build_static({0: ["a"], 1: ["b"]})
        randomized = randomize_trace(trace, RngStream(0))
        assert randomized.files is trace.files
        assert randomized.clients is trace.clients

    def test_original_untouched(self):
        trace = build_static({0: ["a", "b"], 1: ["c", "d"]})
        snapshot = {c: set(f) for c, f in trace.caches.items()}
        randomize_trace(trace, RngStream(2))
        assert {c: set(f) for c, f in trace.caches.items()} == snapshot


class TestSwapRules:
    def make_state(self, caches):
        # The legacy engine keeps string (peer, file) slots, which these
        # white-box assertions index into; the compiled engine's
        # equivalence is pinned in test_compiled_equivalence.py.
        return _SwapState(build_static(caches), use_compiled=False)

    def test_swap_same_peer_refused(self):
        state = self.make_state({0: ["a", "b"]})
        i = state.slots.index((0, "a"))
        j = state.slots.index((0, "b"))
        assert not state.try_swap(i, j)

    def test_swap_same_file_refused(self):
        state = self.make_state({0: ["a"], 1: ["a"]})
        assert not state.try_swap(0, 1)

    def test_swap_creating_duplicate_refused(self):
        # Swapping 0's "a" with 1's "b" would put "b" twice in cache 0.
        state = self.make_state({0: ["a", "b"], 1: ["b", "c"]})
        i = state.slots.index((0, "a"))
        j = state.slots.index((1, "b"))
        assert not state.try_swap(i, j)

    def test_valid_swap_applies(self):
        state = self.make_state({0: ["a"], 1: ["b"]})
        i = state.slots.index((0, "a"))
        j = state.slots.index((1, "b"))
        assert state.try_swap(i, j)
        assert state.caches[0] == {"b"}
        assert state.caches[1] == {"a"}
        assert (0, "b") in state.slots and (1, "a") in state.slots


class TestMixing:
    def test_destroys_planted_structure(self):
        """Two clique communities share nothing after randomization."""
        community_a = {i: [f"a{j}" for j in range(10)] for i in range(5)}
        community_b = {i + 5: [f"b{j}" for j in range(10)] for i in range(5)}
        trace = build_static({**community_a, **community_b})
        randomized = randomize_trace(trace, RngStream(3))
        # Caches should now mix files from both communities.
        mixed = 0
        for cache in randomized.caches.values():
            kinds = {fid[0] for fid in cache}
            if kinds == {"a", "b"}:
                mixed += 1
        assert mixed >= 7

    def test_default_iterations_schedule(self):
        trace = build_static({i: [f"f{i}-{j}" for j in range(4)] for i in range(6)})
        n = trace.total_replicas()
        assert swap_iterations(n) >= n


class TestSchedule:
    def test_checkpoints_monotone_required(self):
        trace = build_static({0: ["a"], 1: ["b"]})
        with pytest.raises(ValueError):
            randomization_schedule(trace, RngStream(0), [5, 1])

    def test_checkpoint_zero_is_original(self):
        trace = build_static({0: ["a", "b"], 1: ["c", "d"]})
        schedule = randomization_schedule(trace, RngStream(0), [0, 50])
        count0, at0 = schedule[0]
        assert count0 == 0
        assert {c: set(f) for c, f in at0.caches.items()} == {
            c: set(f) for c, f in trace.caches.items()
        }

    def test_snapshots_independent(self):
        trace = build_static({i: [f"f{i}-{j}" for j in range(3)] for i in range(5)})
        schedule = randomization_schedule(trace, RngStream(1), [10, 100])
        (_, at10), (_, at100) = schedule
        # Later checkpoints must not mutate earlier snapshots.
        assert at10.caches != at100.caches or True  # snapshots are copies
        counts10 = Counter()
        for cache in at10.caches.values():
            counts10.update(cache)
        assert counts10 == trace.replica_counts()
