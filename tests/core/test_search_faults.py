"""Probe loss and dead-neighbour eviction in the search simulator."""

import pytest

from repro.core.search import SearchConfig, simulate_search
from tests.conftest import build_static


def clique(num_clients=8, num_files=24):
    return build_static(
        {i: [f"f{j}" for j in range(num_files)] for i in range(num_clients)}
    )


class TestProbeLoss:
    def test_certain_loss_kills_every_hit(self):
        result = simulate_search(
            clique(), SearchConfig(list_size=3, probe_loss_rate=1.0, seed=0)
        )
        assert result.hit_rate == 0.0
        assert result.probes_lost > 0

    def test_zero_loss_matches_the_fault_free_run(self):
        clean = simulate_search(clique(), SearchConfig(list_size=3, seed=1))
        zeroed = simulate_search(
            clique(), SearchConfig(list_size=3, probe_loss_rate=0.0, seed=1)
        )
        assert zeroed.rates == clean.rates
        assert zeroed.probes_lost == 0

    def test_hit_rate_degrades_monotonically(self):
        rates = []
        for loss in (0.0, 0.1, 0.5, 0.9):
            result = simulate_search(
                clique(12, 30),
                SearchConfig(list_size=4, probe_loss_rate=loss, seed=2),
            )
            rates.append(result.hit_rate)
        for lighter, heavier in zip(rates, rates[1:]):
            assert heavier <= lighter + 0.02  # monotone within noise
        assert rates[-1] < rates[0]

    def test_deterministic(self):
        config = SearchConfig(list_size=3, probe_loss_rate=0.3, seed=4)
        first = simulate_search(clique(), config)
        second = simulate_search(clique(), config)
        assert first.rates == second.rates
        assert first.probes_lost == second.probes_lost
        assert first.evictions == second.evictions


class TestEviction:
    def test_dead_peers_evicted_under_churn(self):
        result = simulate_search(
            clique(12, 30),
            SearchConfig(
                list_size=4,
                availability=0.3,
                evict_dead=True,
                dead_after=2,
                seed=5,
            ),
        )
        assert result.evictions > 0

    def test_eviction_off_means_none(self):
        result = simulate_search(
            clique(12, 30),
            SearchConfig(list_size=4, availability=0.3, seed=5),
        )
        assert result.evictions == 0

    def test_eviction_under_loss_degrades_gracefully(self):
        """Loss makes eviction trigger-happy (a healthy neighbour can be
        unlucky twice in a row), but the lists keep re-learning uploaders
        so search stays useful rather than collapsing."""
        result = simulate_search(
            clique(12, 30),
            SearchConfig(
                list_size=4,
                probe_loss_rate=0.5,
                evict_dead=True,
                dead_after=2,
                seed=6,
            ),
        )
        assert result.evictions > 0
        assert result.hit_rate > 0.3


class TestValidation:
    def test_faults_are_one_hop_only(self):
        with pytest.raises(ValueError, match="one-hop"):
            SearchConfig(two_hop=True, probe_loss_rate=0.1)
        with pytest.raises(ValueError, match="one-hop"):
            SearchConfig(two_hop=True, evict_dead=True)

    def test_loss_rate_is_a_fraction(self):
        with pytest.raises(ValueError):
            SearchConfig(probe_loss_rate=1.5)

    def test_dead_after_positive(self):
        with pytest.raises(ValueError):
            SearchConfig(dead_after=0)
