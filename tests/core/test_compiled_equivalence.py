"""Seeded equivalence between the compiled and legacy engines.

Every consumer of the compiled trace layer keeps its original
string-keyed path reachable with ``use_compiled=False``; these tests pin
the tentpole guarantee — identical RNG draw order, identical results —
for every refactored layer: the search simulator (all strategies,
two-hop, availability), request generation, randomization, the three
baselines, the semantic overlay and the clustering analyses.
"""

import pytest

from repro.analysis.semantic import (
    clustering_correlation,
    overlap_evolution,
    pair_overlaps,
)
from repro.baselines.flooding import measure_flooding
from repro.baselines.random_walk import measure_random_walk
from repro.baselines.server_search import ServerLookup
from repro.core.randomization import randomization_schedule, randomize_trace
from repro.core.requests import generate_requests
from repro.core.search import SearchConfig, simulate_search
from repro.overlay.simulator import OverlayConfig, SemanticOverlaySimulator
from repro.util.rng import RngStream


def _search_fingerprint(result):
    return (
        result.rates,
        result.rare_rates,
        result.unresolvable,
        result.probes_lost,
        result.evictions,
        result.exchanges,
        result.num_peers,
        result.num_files,
    )


def _run_both(trace, **config_kwargs):
    config = SearchConfig(**config_kwargs)
    compiled = simulate_search(trace, config, use_compiled=True)
    legacy = simulate_search(trace, config, use_compiled=False)
    return compiled, legacy


class TestSearchEquivalence:
    @pytest.mark.parametrize(
        "strategy", ["lru", "history", "random", "popularity"]
    )
    @pytest.mark.parametrize("two_hop", [False, True])
    def test_all_strategies(self, small_static_trace, strategy, two_hop):
        compiled, legacy = _run_both(
            small_static_trace,
            list_size=10,
            strategy=strategy,
            two_hop=two_hop,
            seed=5,
        )
        assert _search_fingerprint(compiled) == _search_fingerprint(legacy)

    def test_availability_below_one(self, small_static_trace):
        compiled, legacy = _run_both(
            small_static_trace, list_size=10, availability=0.7, seed=5
        )
        assert _search_fingerprint(compiled) == _search_fingerprint(legacy)

    def test_rare_files_and_exchanges(self, small_static_trace):
        compiled, legacy = _run_both(
            small_static_trace,
            list_size=10,
            rare_cutoff=3,
            track_exchanges=True,
            seed=5,
        )
        assert _search_fingerprint(compiled) == _search_fingerprint(legacy)

    def test_load_tracking(self, small_static_trace):
        compiled, legacy = _run_both(
            small_static_trace, list_size=10, track_load=True, seed=5
        )
        assert compiled.load.messages == legacy.load.messages


class TestRequestEquivalence:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_streams_are_byte_identical(self, small_static_trace, weighted):
        compiled = list(
            generate_requests(
                small_static_trace,
                RngStream(3, "req"),
                weighted_by_cache=weighted,
            )
        )
        legacy = list(
            generate_requests(
                small_static_trace,
                RngStream(3, "req"),
                weighted_by_cache=weighted,
                use_compiled=False,
            )
        )
        assert compiled == legacy


class TestRandomizationEquivalence:
    def test_randomize_trace(self, small_static_trace):
        compiled = randomize_trace(small_static_trace, RngStream(4, "rand"))
        legacy = randomize_trace(
            small_static_trace, RngStream(4, "rand"), use_compiled=False
        )
        assert compiled.caches == legacy.caches
        # Insertion order matters downstream (request generation iterates
        # the dict), so require it too, not just dict equality.
        assert list(compiled.caches) == list(legacy.caches)

    def test_schedule_checkpoints(self, small_static_trace):
        compiled = randomization_schedule(
            small_static_trace, RngStream(4, "rand"), [10, 50]
        )
        legacy = randomization_schedule(
            small_static_trace,
            RngStream(4, "rand"),
            [10, 50],
            use_compiled=False,
        )
        for (n_c, t_c), (n_l, t_l) in zip(compiled, legacy):
            assert n_c == n_l
            assert t_c.caches == t_l.caches

    def test_search_on_randomized_trace(self, small_static_trace):
        randomized = randomize_trace(small_static_trace, RngStream(4, "rand"))
        compiled, legacy = _run_both(randomized, list_size=10, seed=5)
        assert _search_fingerprint(compiled) == _search_fingerprint(legacy)


class TestBaselineEquivalence:
    def test_flooding(self, small_static_trace):
        compiled = measure_flooding(small_static_trace, num_queries=50, seed=2)
        legacy = measure_flooding(
            small_static_trace, num_queries=50, seed=2, use_compiled=False
        )
        assert compiled == legacy

    def test_random_walk(self, small_static_trace):
        compiled = measure_random_walk(
            small_static_trace, num_queries=50, seed=2
        )
        legacy = measure_random_walk(
            small_static_trace, num_queries=50, seed=2, use_compiled=False
        )
        assert compiled == legacy

    def test_server_lookup(self, small_static_trace):
        compiled = ServerLookup.from_trace(small_static_trace)
        legacy = ServerLookup.from_trace(
            small_static_trace, use_compiled=False
        )
        assert compiled.index_size() == legacy.index_size()
        assert compiled.stats.index_entries == legacy.stats.index_entries
        some_files = sorted(small_static_trace.distinct_files())[:20]
        for fid in some_files + ["unknown-file"]:
            assert compiled.lookup(fid) == legacy.lookup(fid)
        assert compiled.stats.hits == legacy.stats.hits
        # Publish/unpublish of ids unknown to the intern table still work.
        compiled.publish(999, "unknown-file")
        legacy.publish(999, "unknown-file")
        assert compiled.lookup("unknown-file") == legacy.lookup("unknown-file")
        compiled.unpublish(999, "unknown-file")
        legacy.unpublish(999, "unknown-file")
        assert compiled.lookup("unknown-file") == legacy.lookup("unknown-file")


class TestOverlayEquivalence:
    @pytest.mark.parametrize("jaccard", [False, True])
    def test_overlay_series(self, small_static_trace, jaccard):
        def run(use_compiled):
            config = OverlayConfig(rounds=5, seed=3)
            config.vicinity.jaccard = jaccard
            sim = SemanticOverlaySimulator(
                small_static_trace, config, use_compiled=use_compiled
            )
            return sim.run(measure_every=1)

        compiled = run(True)
        legacy = run(False)
        assert compiled.hit_rate_by_round == legacy.hit_rate_by_round
        assert compiled.quality_by_round == legacy.quality_by_round
        assert compiled.connected == legacy.connected


class TestAnalysisEquivalence:
    def test_clustering_correlation(self, small_static_trace):
        caches = dict(small_static_trace.caches)
        via_compiled = clustering_correlation(small_static_trace.compiled())
        via_combos = clustering_correlation(caches)
        via_legacy = clustering_correlation(caches, use_compiled=False)
        assert via_compiled == via_combos == via_legacy

    def test_pair_overlaps_subsampled_path_untouched(self, small_static_trace):
        caches = dict(small_static_trace.caches)
        capped_a = pair_overlaps(
            caches, max_sources_per_file=5, rng=RngStream(1, "cap")
        )
        capped_b = pair_overlaps(
            caches,
            max_sources_per_file=5,
            rng=RngStream(1, "cap"),
            use_compiled=False,
        )
        assert capped_a == capped_b

    def test_overlap_evolution(self, small_temporal_trace):
        compiled = overlap_evolution(small_temporal_trace, seed=6)
        legacy = overlap_evolution(
            small_temporal_trace, seed=6, use_compiled=False
        )
        assert compiled == legacy
