"""Validation of SearchConfig.initial_lists (warm-start neighbour lists).

A malformed warm-start list used to be carried silently into the
simulation — oversized lists were truncated by the strategies and dead
entries (peers absent from the trace) deflated hit rates for no modelled
reason.  Both now fail fast: structural problems at config construction,
trace-membership problems at simulator construction.
"""

import pytest

from repro.core.search import SearchConfig, SearchSimulator, simulate_search
from tests.conftest import build_static


class TestStructuralValidation:
    def test_list_longer_than_list_size_rejected(self):
        with pytest.raises(ValueError, match="exceeding list_size"):
            SearchConfig(list_size=2, initial_lists={0: [1, 2, 3]})

    def test_duplicate_neighbours_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchConfig(list_size=4, initial_lists={0: [1, 2, 1]})

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError, match="own"):
            SearchConfig(list_size=4, initial_lists={0: [1, 0]})

    def test_valid_lists_accepted(self):
        config = SearchConfig(list_size=3, initial_lists={0: [1, 2, 3]})
        assert config.initial_lists == {0: [1, 2, 3]}

    def test_fixed_strategy_still_requires_lists(self):
        with pytest.raises(ValueError, match="initial_lists"):
            SearchConfig(strategy="fixed")


class TestTraceMembership:
    def trace(self):
        return build_static({0: ["a"], 1: ["a", "b"], 2: ["b"]})

    def test_unknown_neighbour_rejected(self):
        config = SearchConfig(list_size=3, initial_lists={0: [1, 99]})
        with pytest.raises(ValueError, match="absent from"):
            SearchSimulator(self.trace(), config)

    def test_unknown_owner_rejected(self):
        config = SearchConfig(list_size=3, initial_lists={77: [0, 1]})
        with pytest.raises(ValueError, match="not in the trace"):
            SearchSimulator(self.trace(), config)

    def test_valid_warm_start_still_runs(self):
        config = SearchConfig(
            list_size=3, initial_lists={0: [1, 2]}, seed=0
        )
        result = simulate_search(self.trace(), config)
        assert result.rates.contributions >= 1
