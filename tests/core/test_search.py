"""Tests for the trace-driven semantic-search simulator."""

import pytest

from repro.core.search import (
    SearchConfig,
    SearchSimulator,
    rank_files_by_popularity,
    rank_uploaders,
    remove_popular_files,
    remove_top_uploaders,
    simulate_search,
)
from tests.conftest import build_static


class TestAccounting:
    def test_contributions_plus_requests_cover_replicas(self):
        trace = build_static({0: ["a", "b"], 1: ["a", "c"], 2: ["a"]})
        result = simulate_search(trace, SearchConfig(list_size=2, seed=0))
        assert (
            result.rates.contributions + result.rates.requests
            == trace.total_replicas()
        )

    def test_one_contribution_per_distinct_file(self):
        trace = build_static({0: ["a", "b"], 1: ["a", "b"], 2: ["a"]})
        result = simulate_search(trace, SearchConfig(list_size=2, seed=0))
        assert result.rates.contributions == 2  # "a" and "b" enter once each

    def test_unique_files_never_generate_requests(self):
        trace = build_static({0: ["only0"], 1: ["only1"]})
        result = simulate_search(trace, SearchConfig(list_size=2, seed=0))
        assert result.rates.requests == 0
        assert result.hit_rate == 0.0

    def test_hits_bounded_by_requests(self):
        trace = build_static(
            {i: [f"f{j}" for j in range(6)] for i in range(6)}
        )
        result = simulate_search(trace, SearchConfig(list_size=3, seed=1))
        assert 0 <= result.rates.hits <= result.rates.requests
        assert 0.0 <= result.hit_rate <= 1.0


class TestHitSemantics:
    def test_clique_reaches_high_hit_rate(self):
        """Identical caches: after warm-up every query hits."""
        trace = build_static({i: [f"f{j}" for j in range(20)] for i in range(4)})
        result = simulate_search(trace, SearchConfig(list_size=3, seed=2))
        assert result.hit_rate > 0.7

    def test_disjoint_caches_never_hit(self):
        trace = build_static(
            {i: [f"c{i}-{j}" for j in range(10)] for i in range(5)}
        )
        result = simulate_search(trace, SearchConfig(list_size=5, seed=3))
        assert result.rates.requests == 0  # all files unique

    def test_deterministic(self):
        trace = build_static({i: [f"f{j}" for j in range(8)] for i in range(5)})
        a = simulate_search(trace, SearchConfig(list_size=3, seed=9))
        b = simulate_search(trace, SearchConfig(list_size=3, seed=9))
        assert a.rates.hits == b.rates.hits
        assert a.load.messages == b.load.messages

    def test_larger_lists_never_hurt(self, small_static_trace):
        small = simulate_search(
            small_static_trace, SearchConfig(list_size=2, track_load=False, seed=4)
        )
        large = simulate_search(
            small_static_trace, SearchConfig(list_size=50, track_load=False, seed=4)
        )
        assert large.hit_rate >= small.hit_rate

    def test_strategies_accepted(self, small_static_trace):
        for strategy in ("lru", "history", "random", "popularity"):
            result = simulate_search(
                small_static_trace,
                SearchConfig(list_size=5, strategy=strategy, track_load=False, seed=5),
            )
            assert 0.0 <= result.hit_rate <= 1.0

    def test_lru_beats_random(self, small_static_trace):
        lru = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, strategy="lru", track_load=False, seed=6),
        )
        rnd = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, strategy="random", track_load=False, seed=6),
        )
        assert lru.hit_rate > rnd.hit_rate


class TestTwoHop:
    def test_two_hop_at_least_one_hop(self, small_static_trace):
        one = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, two_hop=False, track_load=False, seed=7),
        )
        two = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, two_hop=True, track_load=False, seed=7),
        )
        assert two.hit_rate >= one.hit_rate
        assert two.rates.two_hop_hits > 0

    def test_two_hop_hit_accounting(self, small_static_trace):
        result = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, two_hop=True, track_load=False, seed=8),
        )
        assert (
            result.rates.one_hop_hits + result.rates.two_hop_hits
            == result.rates.hits
        )

    def test_two_hop_with_load_tracking_matches_fast_path(self, small_static_trace):
        """Hit totals agree between the message-accounting path and the
        set-logic fast path (the answering peer may differ on ties, which
        can perturb later list states; totals must stay close)."""
        tracked = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, two_hop=True, track_load=True, seed=11),
        )
        fast = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, two_hop=True, track_load=False, seed=11),
        )
        assert tracked.rates.requests == fast.rates.requests
        assert tracked.rates.hits == pytest.approx(fast.rates.hits, rel=0.15)


class TestLoad:
    def test_messages_only_to_neighbours(self):
        trace = build_static({i: [f"f{j}" for j in range(6)] for i in range(4)})
        result = simulate_search(trace, SearchConfig(list_size=2, seed=10))
        assert result.load.total_messages > 0
        # free-riders never appear in lists -> never receive messages
        assert set(result.load.messages) <= set(trace.caches)

    def test_track_load_off(self):
        trace = build_static({i: [f"f{j}" for j in range(6)] for i in range(4)})
        result = simulate_search(
            trace, SearchConfig(list_size=2, track_load=False, seed=10)
        )
        assert result.load.total_messages == 0

    def test_free_riders_receive_no_queries(self, small_static_trace):
        result = simulate_search(
            small_static_trace, SearchConfig(list_size=5, seed=12)
        )
        free_riders = set(small_static_trace.free_riders())
        assert not (set(result.load.messages) & free_riders)


class TestAblations:
    def test_rank_uploaders_by_generosity(self):
        trace = build_static({0: ["a"], 1: ["a", "b", "c"], 2: ["a", "b"], 3: []})
        assert rank_uploaders(trace) == [1, 2, 0]

    def test_remove_top_uploaders(self):
        trace = build_static(
            {0: ["a"], 1: ["a", "b", "c", "d"], 2: ["a", "b"], 3: []}
        )
        ablated = remove_top_uploaders(trace, 1 / 3)
        assert set(ablated.caches) == {0, 2, 3}

    def test_remove_zero_fraction_is_noop(self):
        trace = build_static({0: ["a"], 1: ["b"]})
        assert set(remove_top_uploaders(trace, 0.0).caches) == {0, 1}

    def test_fraction_of_sharers_not_clients(self):
        """Percentages are taken over non-free-riders only."""
        caches = {i: [] for i in range(90)}
        caches.update({100 + i: [f"f{i}", "shared"] for i in range(10)})
        caches[100] = [f"x{j}" for j in range(50)]
        trace = build_static(caches)
        ablated = remove_top_uploaders(trace, 0.10)  # 10% of 10 sharers = 1
        assert 100 not in ablated.caches
        assert len(ablated.caches) == len(caches) - 1

    def test_rank_files_by_popularity(self):
        trace = build_static({0: ["a", "b"], 1: ["a"], 2: ["a", "b", "c"]})
        assert rank_files_by_popularity(trace) == ["a", "b", "c"]

    def test_remove_popular_files(self):
        trace = build_static({0: ["a", "b"], 1: ["a"], 2: ["a", "b", "c"]})
        ablated = remove_popular_files(trace, 1 / 3)
        assert "a" not in ablated.distinct_files()
        assert ablated.caches[0] == frozenset({"b"})

    def test_bad_fraction_rejected(self):
        trace = build_static({0: ["a"]})
        with pytest.raises(ValueError):
            remove_top_uploaders(trace, 1.5)
        with pytest.raises(ValueError):
            remove_popular_files(trace, -0.1)


class TestResultSummary:
    def test_summary_text(self, small_static_trace):
        result = simulate_search(
            small_static_trace,
            SearchConfig(list_size=5, two_hop=True, track_load=False, seed=13),
        )
        text = result.summary()
        assert "strategy=lru" in text
        assert "hit_rate=" in text
        assert "one_hop_rate=" in text
