"""Property-based tests: search-simulator invariants on random traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.randomization import randomize_trace
from repro.core.search import SearchConfig, simulate_search
from repro.util.rng import RngStream
from tests.conftest import build_static

# Random small static traces: up to 12 peers, up to 18 files per peer,
# drawn from a 30-file universe so overlaps actually happen.
random_caches = st.dictionaries(
    keys=st.integers(0, 11),
    values=st.sets(st.integers(0, 29), max_size=18),
    max_size=12,
)


def to_trace(caches):
    return build_static({c: [f"f{i}" for i in files] for c, files in caches.items()})


class TestSimulationInvariants:
    @given(random_caches, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_event_accounting(self, caches, list_size):
        trace = to_trace(caches)
        result = simulate_search(
            trace, SearchConfig(list_size=list_size, track_load=False, seed=1)
        )
        assert (
            result.rates.contributions + result.rates.requests
            == trace.total_replicas()
        )
        assert result.rates.contributions == len(trace.distinct_files())
        assert 0 <= result.rates.hits <= result.rates.requests
        assert result.rates.one_hop_hits == result.rates.hits  # no two-hop

    @given(random_caches)
    @settings(max_examples=25, deadline=None)
    def test_two_hop_dominates_one_hop(self, caches):
        trace = to_trace(caches)
        one = simulate_search(
            trace, SearchConfig(list_size=3, track_load=False, seed=2)
        )
        two = simulate_search(
            trace,
            SearchConfig(list_size=3, two_hop=True, track_load=False, seed=2),
        )
        assert two.rates.hits >= one.rates.hits

    @given(random_caches, st.floats(0.1, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_churn_accounting(self, caches, availability):
        trace = to_trace(caches)
        result = simulate_search(
            trace,
            SearchConfig(
                list_size=3,
                availability=availability,
                track_load=False,
                seed=3,
            ),
        )
        assert (
            result.rates.contributions
            + result.rates.requests
            + result.unresolvable
            == trace.total_replicas()
        )

    @given(random_caches)
    @settings(max_examples=25, deadline=None)
    def test_exchange_totals_match_requests(self, caches):
        trace = to_trace(caches)
        result = simulate_search(
            trace,
            SearchConfig(
                list_size=3, track_load=False, track_exchanges=True, seed=4
            ),
        )
        assert result.exchanges is not None
        assert sum(result.exchanges.values()) == result.rates.requests
        # nobody uploads to themselves
        assert all(u != d for (u, d) in result.exchanges)

    @given(random_caches)
    @settings(max_examples=25, deadline=None)
    def test_load_equals_messages_sent(self, caches):
        trace = to_trace(caches)
        result = simulate_search(
            trace, SearchConfig(list_size=3, track_load=True, seed=5)
        )
        # every message lands on a peer that shared something at the time
        assert set(result.load.messages) <= set(trace.caches)
        # at most list_size messages per request
        assert result.load.total_messages <= 3 * result.rates.requests


class TestRandomizationProperties:
    @given(random_caches, st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_marginals_always_preserved(self, caches, seed):
        trace = to_trace(caches)
        randomized = randomize_trace(trace, RngStream(seed))
        assert randomized.replica_counts() == trace.replica_counts()
        assert {c: len(f) for c, f in randomized.caches.items()} == {
            c: len(f) for c, f in trace.caches.items()
        }

    @given(random_caches)
    @settings(max_examples=20, deadline=None)
    def test_randomized_hit_rate_not_higher_much(self, caches):
        """Randomization never *creates* semantic structure: the
        randomized hit rate stays within noise of the original on random
        (structure-free) inputs and far below on clustered ones."""
        trace = to_trace(caches)
        if trace.total_replicas() < 4:
            return
        original = simulate_search(
            trace, SearchConfig(list_size=3, track_load=False, seed=6)
        )
        randomized = simulate_search(
            randomize_trace(trace, RngStream(7)),
            SearchConfig(list_size=3, track_load=False, seed=6),
        )
        # requests counts match: popularity vector is preserved.
        assert randomized.rates.requests == original.rates.requests
