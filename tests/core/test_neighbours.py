"""Tests for semantic-neighbour list strategies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.neighbours import (
    HistoryNeighbours,
    LRUNeighbours,
    PopularityNeighbours,
    RandomNeighbours,
    make_strategy,
)
from repro.util.rng import RngStream


class TestLRU:
    def test_most_recent_first(self):
        lru = LRUNeighbours(3)
        for peer in (1, 2, 3):
            lru.record_upload(peer)
        assert list(lru.ordered()) == [3, 2, 1]

    def test_eviction(self):
        lru = LRUNeighbours(2)
        for peer in (1, 2, 3):
            lru.record_upload(peer)
        assert list(lru.ordered()) == [3, 2]
        assert not lru.contains(1)

    def test_reupload_moves_to_front(self):
        lru = LRUNeighbours(3)
        for peer in (1, 2, 3, 1):
            lru.record_upload(peer)
        assert list(lru.ordered()) == [1, 3, 2]
        assert len(lru) == 3

    def test_position(self):
        lru = LRUNeighbours(3)
        lru.record_upload(7)
        lru.record_upload(8)
        assert lru.position(8) == 0
        assert lru.position(7) == 1
        assert lru.position(99) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUNeighbours(0)

    @given(st.lists(st.integers(0, 20), max_size=80))
    def test_invariants(self, uploads):
        lru = LRUNeighbours(5)
        for peer in uploads:
            lru.record_upload(peer)
        ordered = list(lru.ordered())
        assert len(ordered) <= 5
        assert len(ordered) == len(set(ordered))
        if uploads:
            assert ordered[0] == uploads[-1]


class TestHistory:
    def test_counts_rank(self):
        history = HistoryNeighbours(2)
        for peer in (1, 2, 2, 3, 3, 3):
            history.record_upload(peer)
        assert list(history.ordered()) == [3, 2]

    def test_tie_broken_by_recency(self):
        history = HistoryNeighbours(3)
        history.record_upload(1)
        history.record_upload(2)
        assert list(history.ordered()) == [2, 1]

    def test_popularity_arg_ignored(self):
        history = HistoryNeighbours(2)
        history.record_upload(1, popularity=1000)
        history.record_upload(2, popularity=1)
        history.record_upload(2, popularity=1)
        assert list(history.ordered()) == [2, 1]

    def test_scores_persist_beyond_list(self):
        """A peer evicted from the visible list can return when its count
        overtakes."""
        history = HistoryNeighbours(1)
        history.record_upload(1)
        history.record_upload(2)
        history.record_upload(2)
        assert list(history.ordered()) == [2]
        history.record_upload(1)
        history.record_upload(1)
        assert list(history.ordered()) == [1]

    @given(st.lists(st.integers(0, 10), max_size=60))
    def test_ordered_by_count(self, uploads):
        history = HistoryNeighbours(4)
        counts = {}
        for peer in uploads:
            history.record_upload(peer)
            counts[peer] = counts.get(peer, 0) + 1
        ordered = list(history.ordered())
        values = [counts[p] for p in ordered]
        assert values == sorted(values, reverse=True)


class TestPopularity:
    def test_rare_uploads_weigh_more(self):
        pop = PopularityNeighbours(1)
        pop.record_upload(1, popularity=100)  # 0.01
        pop.record_upload(1, popularity=100)  # 0.02 total
        pop.record_upload(2, popularity=2)  # 0.5
        assert list(pop.ordered()) == [2]

    def test_popularity_floor(self):
        pop = PopularityNeighbours(2)
        pop.record_upload(1, popularity=0)  # clamped to 1
        assert list(pop.ordered()) == [1]


class TestRandom:
    def make(self, capacity, population):
        rng = RngStream(0, "random-test")
        return RandomNeighbours(capacity, rng, lambda: population, owner=99)

    def test_samples_from_population(self):
        random_list = self.make(3, [1, 2, 3, 4, 5])
        picks = set()
        for _ in range(50):
            ordered = list(random_list.ordered())
            assert len(ordered) == 3
            picks.update(ordered)
        assert picks == {1, 2, 3, 4, 5}

    def test_excludes_owner(self):
        random_list = self.make(5, [99, 1, 2])
        for _ in range(20):
            assert 99 not in random_list.ordered()

    def test_memoryless(self):
        random_list = self.make(2, [1, 2, 3])
        random_list.record_upload(1)
        # record_upload leaves no trace; just ensure no crash and
        # resampling continues.
        assert len(list(random_list.ordered())) == 2

    def test_small_population(self):
        random_list = self.make(10, [1, 2])
        assert sorted(random_list.ordered()) == [1, 2]


class TestFactory:
    def test_builds_each_kind(self):
        rng = RngStream(0)
        assert isinstance(make_strategy("lru", 5), LRUNeighbours)
        assert isinstance(make_strategy("history", 5), HistoryNeighbours)
        assert isinstance(make_strategy("popularity", 5), PopularityNeighbours)
        random_list = make_strategy("random", 5, rng=rng, population=lambda: [1])
        assert isinstance(random_list, RandomNeighbours)

    def test_case_insensitive(self):
        assert isinstance(make_strategy("LRU", 5), LRUNeighbours)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("fifo", 5)

    def test_random_requires_population(self):
        with pytest.raises(ValueError):
            make_strategy("random", 5)


class TestMembershipProbeCost:
    """Audit: ``contains``/``position`` are O(1) membership probes that do
    not enumerate the list.  The two-hop fast path issues one membership
    probe per (sharer, first-hop neighbour) pair, so routing ``contains``
    through ``ordered()`` would turn every probe into a rebuild-and-scan;
    counting both during a real run pins the separation."""

    @pytest.mark.parametrize("cls", [LRUNeighbours, HistoryNeighbours,
                                     PopularityNeighbours])
    def test_contains_never_calls_ordered(self, monkeypatch, cls):
        strategy = cls(5)
        for peer in (1, 2, 3):
            strategy.record_upload(peer)
        calls = {"ordered": 0}
        original = cls.ordered

        def counting_ordered(self):
            calls["ordered"] += 1
            return original(self)

        monkeypatch.setattr(cls, "ordered", counting_ordered)
        assert strategy.contains(1)
        assert not strategy.contains(99)
        assert strategy.position(1) is not None
        assert calls["ordered"] == 0

    @pytest.mark.parametrize("name, cls", [
        ("lru", LRUNeighbours),
        ("history", HistoryNeighbours),
        ("popularity", PopularityNeighbours),
    ])
    def test_two_hop_run_probes_more_than_it_enumerates(
        self, monkeypatch, name, cls, small_static_trace
    ):
        from repro.core.search import SearchConfig, simulate_search

        counts = {"ordered": 0, "contains": 0}
        original_ordered = cls.ordered
        original_contains = cls.contains

        def counting_ordered(self):
            counts["ordered"] += 1
            return original_ordered(self)

        def counting_contains(self, peer):
            counts["contains"] += 1
            return original_contains(self, peer)

        monkeypatch.setattr(cls, "ordered", counting_ordered)
        monkeypatch.setattr(cls, "contains", counting_contains)
        # The scalar engine probes per (sharer, neighbour) pair; the
        # vectorized engine unions members() views instead, so this
        # pins the scalar probe pattern specifically.
        simulate_search(
            small_static_trace,
            SearchConfig(
                list_size=5, strategy=name, two_hop=True,
                track_load=False, seed=1,
            ),
            vectorized=False,
        )
        assert counts["contains"] > 0
        # One enumeration per issued query (plus warm-up); membership
        # probes dominate because every one-hop miss fans out to
        # (sharers x first-hop) contains probes.
        assert counts["ordered"] < counts["contains"]
