"""Tests for the peer-availability (churn) and rare-tracking extensions
of the search simulator."""

import pytest

from repro.core.search import SearchConfig, simulate_search
from tests.conftest import build_static


class TestConfig:
    def test_availability_validated(self):
        with pytest.raises(ValueError):
            SearchConfig(availability=1.5)

    def test_two_hop_with_churn_rejected(self):
        with pytest.raises(ValueError, match="one-hop"):
            SearchConfig(availability=0.5, two_hop=True)

    def test_full_availability_is_default(self):
        assert SearchConfig().availability == 1.0


class TestChurnSemantics:
    def clique(self, n=6, files=12):
        return build_static({i: [f"f{j}" for j in range(files)] for i in range(n)})

    def test_zero_availability_resolves_nothing(self):
        result = simulate_search(
            self.clique(), SearchConfig(list_size=3, availability=0.0, seed=1)
        )
        assert result.rates.requests == 0
        assert result.unresolvable > 0

    def test_full_availability_no_unresolvable(self):
        result = simulate_search(
            self.clique(), SearchConfig(list_size=3, availability=1.0, seed=1)
        )
        assert result.unresolvable == 0

    def test_accounting_covers_all_replicas(self):
        trace = self.clique()
        result = simulate_search(
            trace, SearchConfig(list_size=3, availability=0.5, seed=2)
        )
        assert (
            result.rates.contributions
            + result.rates.requests
            + result.unresolvable
            == trace.total_replicas()
        )

    def test_hit_rate_degrades_with_availability(self, small_static_trace):
        rates = []
        for availability in (1.0, 0.6, 0.2):
            result = simulate_search(
                small_static_trace,
                SearchConfig(
                    list_size=10,
                    availability=availability,
                    track_load=False,
                    seed=3,
                ),
            )
            rates.append(result.hit_rate)
        assert rates[0] >= rates[1] >= rates[2]

    def test_deterministic_under_churn(self, small_static_trace):
        config = SearchConfig(list_size=5, availability=0.7, track_load=False, seed=4)
        a = simulate_search(small_static_trace, config)
        b = simulate_search(small_static_trace, config)
        assert a.rates.hits == b.rates.hits
        assert a.unresolvable == b.unresolvable


class TestRareTracking:
    def test_rare_rates_absent_by_default(self, small_static_trace):
        result = simulate_search(
            small_static_trace, SearchConfig(list_size=5, track_load=False, seed=5)
        )
        assert result.rare_rates is None

    def test_rare_requests_counted(self):
        # "hot" has 4 replicas, "cold" has 2.
        trace = build_static(
            {0: ["hot", "cold"], 1: ["hot", "cold"], 2: ["hot"], 3: ["hot"]}
        )
        result = simulate_search(
            trace,
            SearchConfig(list_size=3, rare_cutoff=2, track_load=False, seed=6),
        )
        assert result.rare_rates is not None
        # cold: 2 replicas -> 1 contribution + 1 request
        assert result.rare_rates.requests == 1
        assert result.rare_rates.requests < result.rates.requests

    def test_rare_subset_of_total(self, small_static_trace):
        result = simulate_search(
            small_static_trace,
            SearchConfig(list_size=10, rare_cutoff=3, track_load=False, seed=7),
        )
        assert result.rare_rates is not None
        assert result.rare_rates.requests <= result.rates.requests
        assert result.rare_rates.hits <= result.rates.hits


class TestExtensionExperiments:
    def test_strategy_comparison_small(self):
        from repro.runtime.scale import Scale
        from repro.experiments.extension_experiments import (
            run_strategy_comparison,
        )

        result = run_strategy_comparison(scale=Scale.SMALL)
        assert result.metric("random_rare") < result.metric("lru_rare")
        assert result.metric("popularity_rare") > 0.0
        for strategy in ("lru", "history", "popularity", "random"):
            assert 0.0 <= result.metric(f"{strategy}_overall") <= 1.0

    def test_availability_sweep_small(self):
        from repro.runtime.scale import Scale
        from repro.experiments.extension_experiments import (
            run_availability_sweep,
        )

        result = run_availability_sweep(
            scale=Scale.SMALL, availabilities=(1.0, 0.5)
        )
        assert result.metric("hit@1") >= result.metric("hit@0.5")
        assert 0.0 <= result.metric("unresolvable@0.5") <= 1.0


class TestLoyaltySensitivity:
    def test_small_scale_monotone(self):
        from repro.runtime.scale import Scale
        from repro.experiments.extension_experiments import (
            run_loyalty_sensitivity,
        )

        result = run_loyalty_sensitivity(
            scale=Scale.SMALL, loyalties=(0.3, 0.9)
        )
        assert result.metric("hit_at_0_9") > result.metric("hit_at_0_3")
        assert result.metric("share_at_0_9") > result.metric("share_at_0_3")
