"""Seeded equivalence between the vectorized and scalar engines.

PR 8's core-layer tentpole: the batched draw kernels
(:mod:`repro.core.vectorized`) and the two-hop member-union fast path
must not change a single seeded draw.  These tests pin byte-identity at
three levels — the word/draw kernels against ``random.Random`` itself,
the request streams, and the full search simulator (all strategies,
two-hop, availability, probe loss) — plus mid-stream pickling, which is
what a checkpoint does to a live ``WordStream``.
"""

import pickle
import random
import subprocess
import sys

import pytest

from repro.core.requests import generate_requests, iter_requests_compiled
from repro.core.search import SearchConfig, simulate_search
from repro.core.vectorized import WordStream
from repro.util.rng import RngStream


class TestWordStreamKernels:
    """Draw-for-draw identity of the kernels against random.Random."""

    def test_randrange_matches(self):
        mirror = random.Random(11)
        reference = random.Random(11)
        ws = WordStream(mirror, chunk=64)
        for n in list(range(1, 40)) + [997, 2**16 - 1, 2**16, 10**6]:
            for _ in range(20):
                assert ws.randrange(n) == reference.randrange(n)

    def test_shuffle_matches(self):
        mirror = random.Random(12)
        reference = random.Random(12)
        ws = WordStream(mirror, chunk=64)
        for size in (1, 2, 3, 17, 255, 256, 257, 1000):
            ours = list(range(size))
            theirs = list(range(size))
            ws.shuffle(ours)
            reference.shuffle(theirs)
            assert ours == theirs

    def test_fixed_batch_matches_and_rewinds(self):
        mirror = random.Random(13)
        reference = random.Random(13)
        meta = random.Random(99)
        ws = WordStream(mirror, chunk=128)
        for _ in range(300):
            n = meta.randrange(1, 5000)
            draws, marks = ws.fixed_batch(n, meta.randrange(1, 80))
            assert len(draws) >= 1
            keep = meta.randrange(1, len(draws) + 1)
            for value in draws[:keep]:
                assert value == reference.randrange(n)
            if keep < len(draws):
                # Abandoned draws must be invisible: rewinding and
                # re-deriving under any modulus continues the reference
                # sequence exactly.
                ws.rewind_to(marks[keep - 1])

    def test_countdown_batch_matches(self):
        mirror = random.Random(14)
        reference = random.Random(14)
        meta = random.Random(98)
        ws = WordStream(mirror, chunk=512)
        for _ in range(150):
            start = meta.randrange(2, 90000)
            count = meta.randrange(1, min(start, 2000))
            draws, _marks = ws.countdown_batch(start, count)
            assert 1 <= len(draws) <= count
            modulus = start
            for value in draws:
                assert value == reference.randrange(modulus)
                modulus -= 1

    def test_pickle_mid_chunk_resumes_word_sequence(self):
        mirror = random.Random(15)
        reference = random.Random(15)
        ws = WordStream(mirror, chunk=64)
        for _ in range(37):
            assert ws.randrange(1000) == reference.randrange(1000)
        clone = pickle.loads(pickle.dumps(ws))
        clone.attach(mirror)
        for _ in range(200):
            assert clone.randrange(1000) == reference.randrange(1000)

    def test_wrapped_random_continues_after_stream_drops(self):
        # The mirror advances the wrapped Random past every word it
        # takes, so dropping the stream leaves the Random on the one
        # true sequence (just past the unconsumed tail of the chunk).
        mirror = random.Random(16)
        ws = WordStream(mirror, chunk=64)
        ws.randrange(1000)
        expected = random.Random(16)
        for _ in range(64):
            expected.getrandbits(32)
        assert mirror.getrandbits(32) == expected.getrandbits(32)


class TestRequestStreamEquivalence:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_streams_byte_identical(self, small_static_trace, weighted):
        vectorized = list(
            generate_requests(
                small_static_trace,
                RngStream(3, "req"),
                weighted_by_cache=weighted,
                vectorized=True,
            )
        )
        scalar = list(
            generate_requests(
                small_static_trace,
                RngStream(3, "req"),
                weighted_by_cache=weighted,
                vectorized=False,
            )
        )
        legacy = list(
            generate_requests(
                small_static_trace,
                RngStream(3, "req"),
                weighted_by_cache=weighted,
                use_compiled=False,
            )
        )
        assert vectorized == scalar == legacy

    @pytest.mark.parametrize("weighted", [False, True])
    def test_pickled_mid_stream_resumes_exactly(
        self, small_static_trace, weighted
    ):
        compiled = small_static_trace.compiled()

        def stream():
            return iter_requests_compiled(
                compiled,
                RngStream(7, "req"),
                weighted_by_cache=weighted,
                vectorized=True,
            )

        reference = list(stream())
        for cut in (1, 17, len(reference) // 2, len(reference) - 1):
            interrupted = stream()
            head = [next(interrupted) for _ in range(cut)]
            resumed = pickle.loads(pickle.dumps(interrupted))
            tail = list(resumed)
            assert head + tail == reference, f"diverged after cut={cut}"


def _fingerprint(result):
    return (
        result.rates,
        result.rare_rates,
        result.unresolvable,
        result.probes_lost,
        result.evictions,
        result.exchanges,
    )


class TestSearchEquivalence:
    @pytest.mark.parametrize(
        "strategy", ["lru", "history", "random", "popularity"]
    )
    @pytest.mark.parametrize("two_hop", [False, True])
    def test_all_strategies(self, small_static_trace, strategy, two_hop):
        config = SearchConfig(
            list_size=10, strategy=strategy, two_hop=two_hop, seed=5
        )
        vectorized = simulate_search(
            small_static_trace, config, vectorized=True
        )
        scalar = simulate_search(
            small_static_trace, config, vectorized=False
        )
        legacy = simulate_search(
            small_static_trace, config, use_compiled=False
        )
        assert _fingerprint(vectorized) == _fingerprint(scalar)
        assert _fingerprint(vectorized) == _fingerprint(legacy)

    @pytest.mark.parametrize("weighted", [False, True])
    def test_availability_loss_and_load(self, small_static_trace, weighted):
        config = SearchConfig(
            list_size=10,
            availability=0.7,
            probe_loss_rate=0.1,
            weighted_requests=weighted,
            track_load=True,
            seed=5,
        )
        vectorized = simulate_search(
            small_static_trace, config, vectorized=True
        )
        scalar = simulate_search(
            small_static_trace, config, vectorized=False
        )
        assert _fingerprint(vectorized) == _fingerprint(scalar)
        assert vectorized.load.messages == scalar.load.messages


def test_import_does_not_pull_numpy():
    """The kernels must not tax processes that never draw (satellite 1).

    Importing the module — and building a search simulator with
    ``vectorized=False`` — must leave numpy unimported, mirroring the
    ``_get_sparse()`` contract in the trace layer.
    """
    script = (
        "import sys\n"
        "import repro.core.vectorized\n"
        "import repro.core.requests\n"
        "import repro.core.search\n"
        "assert 'numpy' not in sys.modules, 'numpy imported eagerly'\n"
    )
    subprocess.run(
        [sys.executable, "-c", script],
        check=True,
        env={"PYTHONPATH": "src"},
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
    )
