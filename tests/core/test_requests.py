"""Tests for request-sequence generation."""

from collections import Counter

from repro.core.requests import generate_requests, request_count
from repro.util.rng import RngStream
from tests.conftest import build_static


class TestCoverage:
    def test_every_replica_requested_once(self):
        trace = build_static({0: ["a", "b"], 1: ["a"], 2: []})
        rng = RngStream(0)
        requests = list(generate_requests(trace, rng))
        assert len(requests) == 3
        seen = Counter((r.peer, r.file_id) for r in requests)
        assert set(seen) == {(0, "a"), (0, "b"), (1, "a")}
        assert all(v == 1 for v in seen.values())

    def test_request_count_helper(self):
        trace = build_static({0: ["a", "b"], 1: ["a"]})
        assert request_count(trace) == 3

    def test_free_riders_request_nothing(self):
        trace = build_static({0: [], 1: ["x"]})
        requests = list(generate_requests(trace, RngStream(1)))
        assert all(r.peer == 1 for r in requests)

    def test_empty_trace(self):
        trace = build_static({0: []})
        assert list(generate_requests(trace, RngStream(0))) == []


class TestOrdering:
    def test_deterministic_given_seed(self):
        trace = build_static({i: [f"f{j}" for j in range(5)] for i in range(4)})
        a = list(generate_requests(trace, RngStream(3)))
        b = list(generate_requests(trace, RngStream(3)))
        assert a == b

    def test_seed_changes_order(self):
        trace = build_static({i: [f"f{j}" for j in range(5)] for i in range(4)})
        a = list(generate_requests(trace, RngStream(3)))
        b = list(generate_requests(trace, RngStream(4)))
        assert a != b
        assert sorted((r.peer, r.file_id) for r in a) == sorted(
            (r.peer, r.file_id) for r in b
        )

    def test_peers_interleaved(self):
        """With uniform peer picking, a peer's requests are spread through
        the sequence rather than clumped at the start."""
        trace = build_static(
            {0: [f"a{i}" for i in range(30)], 1: [f"b{i}" for i in range(30)]}
        )
        requests = list(generate_requests(trace, RngStream(5)))
        first_half_peers = {r.peer for r in requests[:20]}
        assert first_half_peers == {0, 1}


class TestWeightedVariant:
    def test_same_coverage(self):
        trace = build_static({0: ["a", "b", "c"], 1: ["d"]})
        requests = list(
            generate_requests(trace, RngStream(0), weighted_by_cache=True)
        )
        assert len(requests) == 4
        assert {(r.peer, r.file_id) for r in requests} == {
            (0, "a"),
            (0, "b"),
            (0, "c"),
            (1, "d"),
        }

    def test_big_caches_front_loaded(self):
        """Replica-weighted picking drains large caches faster early on."""
        trace = build_static(
            {0: [f"a{i}" for i in range(90)], 1: [f"b{i}" for i in range(10)]}
        )
        requests = list(
            generate_requests(trace, RngStream(1), weighted_by_cache=True)
        )
        first_quarter = requests[:25]
        big_peer_share = sum(1 for r in first_quarter if r.peer == 0) / 25
        assert big_peer_share > 0.7
