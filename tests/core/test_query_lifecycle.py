"""Tests for per-query lifecycle records and their histograms.

A profiled search emits one :class:`QueryRecord` per request — outcome,
hop counts, phase latencies — folded into the ``search/*`` histograms
of the metrics report and, with a tracer attached, one structured
instant event per query.
"""

from repro.core.search import QueryRecord, SearchConfig, simulate_search
from repro.obs import Observer, TraceRecorder
from tests.conftest import build_static

SEED = 7


def clique(files: int = 12, peers: int = 8):
    return build_static(
        {i: [f"f{j}" for j in range(files)] for i in range(peers)}
    )


class TestQueryRecord:
    def test_probes_sums_both_hops(self):
        record = QueryRecord(
            index=1, peer=0, file_id="f", outcome="two_hop",
            hops=4, two_hop_contacts=7,
        )
        assert record.probes == 11

    def test_as_args_includes_optionals_only_when_set(self):
        record = QueryRecord(
            index=1, peer=0, file_id="f", outcome="fallback", hops=3
        )
        args = record.as_args()
        assert args["outcome"] == "fallback"
        assert "hit_position" not in args
        assert "probes_lost" not in args
        record.hit_position = 2
        record.probes_lost = 1
        args = record.as_args()
        assert args["hit_position"] == 2
        assert args["probes_lost"] == 1


class TestLifecycleHistograms:
    def test_histograms_cover_every_request(self):
        obs = Observer()
        result = simulate_search(
            clique(), SearchConfig(list_size=3, seed=SEED), obs=obs
        )
        metrics = obs.report()
        requests = result.rates.requests
        assert metrics.histogram("search/hops_per_request").count == requests
        assert (
            metrics.histogram("search/probes_per_request").count == requests
        )
        assert (
            metrics.histogram("search/latency/one_hop_s").count == requests
        )

    def test_hit_position_counts_one_hop_hits_only(self):
        obs = Observer()
        result = simulate_search(
            clique(), SearchConfig(list_size=3, seed=SEED), obs=obs
        )
        hist = obs.report().histogram("search/hit_position")
        assert hist.count == result.rates.one_hop_hits
        # 1-based rank within a list of at most list_size neighbours.
        assert hist.min >= 1
        assert hist.max <= 3

    def test_phase_latencies_partition_by_outcome(self):
        obs = Observer()
        result = simulate_search(
            clique(),
            SearchConfig(list_size=3, two_hop=True, seed=SEED),
            obs=obs,
        )
        metrics = obs.report()
        rates = result.rates
        misses = rates.requests - rates.one_hop_hits
        fallbacks = rates.requests - rates.hits
        # Two-hop runs on every one-hop miss; fallback on every full miss.
        assert (
            metrics.histogram("search/latency/two_hop_s").count == misses
        )
        assert (
            metrics.histogram("search/latency/fallback_s").count == fallbacks
        )

    def test_one_hop_only_search_has_no_two_hop_latency(self):
        obs = Observer()
        simulate_search(
            clique(), SearchConfig(list_size=3, seed=SEED), obs=obs
        )
        assert "search/latency/two_hop_s" not in obs.report().histograms

    def test_disabled_observer_records_no_histograms(self):
        obs = Observer(enabled=False)
        simulate_search(
            clique(), SearchConfig(list_size=3, seed=SEED), obs=obs
        )
        assert obs.histograms == {}


class TestQueryTraceEvents:
    def test_one_instant_event_per_request(self):
        tracer = TraceRecorder()
        obs = Observer(tracer=tracer)
        result = simulate_search(
            clique(),
            SearchConfig(list_size=3, two_hop=True, seed=SEED),
            obs=obs,
        )
        queries = [
            e
            for e in tracer.to_chrome()["traceEvents"]
            if e.get("cat") == "query"
        ]
        assert len(queries) == result.rates.requests
        outcomes = {e["args"]["outcome"] for e in queries}
        assert outcomes <= {"one_hop", "two_hop", "fallback"}
        assert all(e["args"]["hops"] >= 0 for e in queries)

    def test_no_tracer_means_no_query_events_but_same_histograms(self):
        plain_obs = Observer()
        simulate_search(
            clique(), SearchConfig(list_size=3, seed=SEED), obs=plain_obs
        )
        traced_obs = Observer(tracer=TraceRecorder())
        simulate_search(
            clique(), SearchConfig(list_size=3, seed=SEED), obs=traced_obs
        )
        plain, traced = plain_obs.report(), traced_obs.report()
        assert set(plain.histograms) == set(traced.histograms)
        for name in plain.histograms:
            # Wall-clock sums differ run to run; the deterministic
            # structure (how many samples landed where) must not.
            assert plain.histogram(name).count == traced.histogram(name).count
        # The count-valued histograms are fully deterministic.
        assert (
            plain.histograms["search/hops_per_request"]
            == traced.histograms["search/hops_per_request"]
        )
