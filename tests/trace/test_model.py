"""Tests for the trace data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.model import (
    ClientMeta,
    FileMeta,
    Snapshot,
    StaticTrace,
    Trace,
    overlap,
    pair_key,
)
from tests.conftest import build_static, build_trace, make_client, make_file


class TestFileMeta:
    def test_valid(self):
        meta = FileMeta(file_id="f1", size=100)
        assert meta.kind == "unknown"

    def test_negative_size(self):
        with pytest.raises(ValueError):
            FileMeta(file_id="f1", size=-1)

    def test_empty_id(self):
        with pytest.raises(ValueError):
            FileMeta(file_id="", size=1)


class TestClientMeta:
    def test_requires_uid(self):
        with pytest.raises(ValueError):
            ClientMeta(client_id=1, uid="", ip="1.2.3.4", country="FR", asn=1)

    def test_requires_country(self):
        with pytest.raises(ValueError):
            ClientMeta(client_id=1, uid="u", ip="1.2.3.4", country="", asn=1)


class TestTraceBasics:
    def test_snapshot_requires_known_client(self):
        trace = Trace()
        with pytest.raises(KeyError):
            trace.observe(1, 99, ["f1"])

    def test_days_sorted(self):
        trace = build_trace({5: {0: ["a"]}, 2: {0: ["a"]}, 9: {0: []}})
        assert trace.days() == [2, 5, 9]

    def test_reobservation_replaces(self):
        trace = build_trace({1: {0: ["a"]}})
        trace.observe(1, 0, ["b", "c"])
        assert trace.cache(0, 1) == frozenset({"b", "c"})
        assert trace.num_snapshots == 1

    def test_cache_missing_day(self):
        trace = build_trace({1: {0: ["a"]}})
        assert trace.cache(0, 2) is None

    def test_observed_clients(self):
        trace = build_trace({1: {0: ["a"], 1: []}})
        assert sorted(trace.observed_clients(1)) == [0, 1]
        assert trace.observed_clients(7) == []

    def test_iter_snapshots_ordered(self):
        trace = build_trace({2: {1: ["a"], 0: ["b"]}, 1: {0: ["a"]}})
        snaps = list(trace.iter_snapshots())
        assert [(s.day, s.client_id) for s in snaps] == [(1, 0), (2, 0), (2, 1)]


class TestDerivedIndexes:
    def test_static_cache_union(self):
        trace = build_trace({1: {0: ["a", "b"]}, 2: {0: ["b", "c"]}})
        assert trace.static_cache(0) == {"a", "b", "c"}

    def test_free_riders(self):
        trace = build_trace({1: {0: ["a"], 1: []}, 2: {1: []}})
        assert trace.free_riders() == {1}
        assert trace.is_free_rider(1)
        assert not trace.is_free_rider(0)

    def test_client_without_snapshot_is_free_rider(self):
        trace = build_trace({1: {0: ["a"]}})
        trace.add_client(make_client(42))
        assert trace.is_free_rider(42)
        assert trace.observation_days(42) == []

    def test_observation_days(self):
        trace = build_trace({3: {0: ["a"]}, 1: {0: ["a"]}})
        assert trace.observation_days(0) == [1, 3]

    def test_sources(self):
        trace = build_trace({1: {0: ["a"], 1: ["a", "b"], 2: []}})
        assert sorted(trace.sources("a", 1)) == [0, 1]
        assert trace.sources("b", 1) == [1]
        assert trace.sources("zz", 1) == []

    def test_replica_counts(self):
        trace = build_trace({1: {0: ["a", "b"], 1: ["a"]}})
        counts = trace.replica_counts(1)
        assert counts["a"] == 2
        assert counts["b"] == 1

    def test_static_replica_counts_dedupe_days(self):
        trace = build_trace({1: {0: ["a"]}, 2: {0: ["a"]}})
        assert trace.static_replica_counts()["a"] == 1

    def test_average_popularity(self):
        # "a" seen 2 days with 1 distinct source -> 0.5;
        # "b" seen 1 day with 2 sources -> 2.0
        trace = build_trace({1: {0: ["a"], 1: ["b"], 2: ["b"]}, 2: {0: ["a"]}})
        pop = trace.average_popularity()
        assert pop["a"] == pytest.approx(0.5)
        assert pop["b"] == pytest.approx(2.0)

    def test_index_invalidated_on_new_snapshot(self):
        trace = build_trace({1: {0: ["a"]}})
        assert trace.static_cache(0) == {"a"}
        trace.observe(2, 0, ["b"])
        assert trace.static_cache(0) == {"a", "b"}


class TestRestrictions:
    def test_restricted_to_days(self):
        trace = build_trace({1: {0: ["a"]}, 2: {0: ["b"]}, 3: {0: ["c"]}})
        sub = trace.restricted_to_days([1, 3])
        assert sub.days() == [1, 3]
        assert sub.static_cache(0) == {"a", "c"}

    def test_restricted_to_clients(self):
        trace = build_trace({1: {0: ["a"], 1: ["b"]}})
        sub = trace.restricted_to_clients([0])
        assert 1 not in sub.clients
        assert sub.observed_clients(1) == [0]


class TestToStatic:
    def test_union_and_free_riders(self):
        trace = build_trace({1: {0: ["a"], 1: []}, 2: {0: ["b"]}})
        static = trace.to_static()
        assert static.caches[0] == frozenset({"a", "b"})
        assert static.caches[1] == frozenset()

    def test_drop_free_riders(self):
        trace = build_trace({1: {0: ["a"], 1: []}})
        static = trace.to_static(drop_free_riders=True)
        assert set(static.caches) == {0}


class TestStaticTrace:
    def test_counters(self):
        static = build_static({0: ["a", "b"], 1: ["a"], 2: []})
        assert static.num_clients == 3
        assert static.total_replicas() == 3
        assert static.replica_counts()["a"] == 2
        assert static.distinct_files() == {"a", "b"}
        assert sorted(static.non_free_riders()) == [0, 1]
        assert static.free_riders() == [2]

    def test_generosity(self):
        static = build_static({0: ["a", "b"], 1: []})
        assert static.generosity() == {0: 2, 1: 0}

    def test_shared_bytes(self):
        static = build_static(
            {0: ["a", "b"]},
            files=[make_file("a", size=10), make_file("b", size=5)],
        )
        assert static.shared_bytes(0) == 15
        assert static.shared_bytes(99) == 0

    def test_shared_bytes_missing_meta(self):
        static = build_static({0: ["a"]})
        del static.files["a"]
        assert static.shared_bytes(0) == 0

    def test_without_clients(self):
        static = build_static({0: ["a"], 1: ["b"]})
        out = static.without_clients([0])
        assert set(out.caches) == {1}
        assert 0 not in out.clients
        # Original untouched.
        assert set(static.caches) == {0, 1}

    def test_without_files(self):
        static = build_static({0: ["a", "b"], 1: ["a"]})
        out = static.without_files(["a"])
        assert out.caches[0] == frozenset({"b"})
        assert out.caches[1] == frozenset()
        assert "a" not in out.files

    def test_replace_caches(self):
        static = build_static({0: ["a"]})
        out = static.replace_caches({0: ["b"]})
        assert out.caches[0] == frozenset({"b"})
        assert static.caches[0] == frozenset({"a"})

    def test_copy_mutable_is_independent(self):
        static = build_static({0: ["a"]})
        mutable = static.copy_mutable()
        mutable[0].add("zzz")
        assert "zzz" not in static.caches[0]


class TestHelpers:
    def test_overlap(self):
        assert overlap({"a", "b"}, frozenset({"b", "c"})) == 1
        assert overlap(["a", "b"], frozenset()) == 0

    @given(
        st.sets(st.integers(0, 30), max_size=15),
        st.sets(st.integers(0, 30), max_size=15),
    )
    def test_overlap_matches_set_intersection(self, a, b):
        assert overlap(a, frozenset(b)) == len(a & b)

    def test_pair_key_canonical(self):
        assert pair_key(3, 1) == (1, 3)
        assert pair_key(1, 3) == (1, 3)
        assert pair_key(2, 2) == (2, 2)
