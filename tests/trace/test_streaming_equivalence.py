"""Streaming analyses over a trace store must equal the in-memory engines
exactly — same Series names, xs, and ys — on a seeded SMALL trace.

This is the equivalence contract that makes the out-of-core path a drop-in:
any divergence (ordering, tie-breaks, rng consumption, float accumulation)
shows up here as a hard failure, not a tolerance.
"""

import pytest

from repro.analysis.popularity import (
    file_spread,
    max_spread_fraction,
    rank_evolution,
    rank_replication,
    top_files_on,
)
from repro.analysis.semantic import overlap_evolution
from repro.analysis.streaming import (
    streaming_file_spread,
    streaming_max_spread_fraction,
    streaming_overlap_evolution,
    streaming_rank_evolution,
    streaming_rank_replication,
    streaming_top_files_on,
)
from repro.trace.io import trace_to_store


@pytest.fixture(scope="module")
def store(tmp_path_factory, small_temporal_trace):
    path = tmp_path_factory.mktemp("streaming") / "store"
    with trace_to_store(small_temporal_trace, path) as opened:
        yield opened


def assert_series_equal(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.name == right.name
        assert list(left.xs) == list(right.xs)
        assert list(left.ys) == list(right.ys)


class TestPopularity:
    def test_rank_replication(self, small_temporal_trace, store):
        day = small_temporal_trace.days()[1]
        assert_series_equal(
            [rank_replication(small_temporal_trace, day)],
            [streaming_rank_replication(store, day)],
        )

    def test_rank_replication_truncated(self, small_temporal_trace, store):
        day = small_temporal_trace.days()[0]
        assert_series_equal(
            [rank_replication(small_temporal_trace, day, max_rank=25)],
            [streaming_rank_replication(store, day, max_rank=25)],
        )

    def test_top_files_on(self, small_temporal_trace, store):
        for day in small_temporal_trace.days()[:3]:
            assert top_files_on(small_temporal_trace, day, 10) == (
                streaming_top_files_on(store, day, 10)
            )

    def test_file_spread_reference_day(self, small_temporal_trace, store):
        day = small_temporal_trace.days()[0]
        assert_series_equal(
            file_spread(small_temporal_trace, reference_day=day, top_k=6),
            streaming_file_spread(store, reference_day=day, top_k=6),
        )

    def test_file_spread_explicit_files(self, small_temporal_trace, store):
        day = small_temporal_trace.days()[-1]
        fids = top_files_on(small_temporal_trace, day, 4)
        assert_series_equal(
            file_spread(small_temporal_trace, file_ids=fids),
            streaming_file_spread(store, file_ids=fids),
        )

    def test_file_spread_static_default_needs_reference(self, store):
        # The static top-k selection needs whole-trace state by definition;
        # the streaming variant refuses instead of approximating.
        with pytest.raises(ValueError, match="file_ids or reference_day"):
            streaming_file_spread(store)

    def test_rank_evolution(self, small_temporal_trace, store):
        day = small_temporal_trace.days()[0]
        assert_series_equal(
            rank_evolution(small_temporal_trace, reference_day=day, top_k=5),
            streaming_rank_evolution(store, reference_day=day, top_k=5),
        )

    def test_max_spread_fraction(self, small_temporal_trace, store):
        assert max_spread_fraction(small_temporal_trace) == (
            streaming_max_spread_fraction(store)
        )


class TestOverlapEvolution:
    def test_default_levels(self, small_temporal_trace, store):
        assert_series_equal(
            overlap_evolution(small_temporal_trace, seed=7),
            streaming_overlap_evolution(store, seed=7),
        )

    def test_subsampled_levels(self, small_temporal_trace, store):
        # Small cap forces the rng-backed subsampling path on every level;
        # equality proves both variants consume the stream identically.
        assert_series_equal(
            overlap_evolution(small_temporal_trace, seed=3, max_pairs_per_level=5),
            streaming_overlap_evolution(store, seed=3, max_pairs_per_level=5),
        )

    def test_explicit_levels_and_first_day(self, small_temporal_trace, store):
        first_day = small_temporal_trace.days()[1]
        assert_series_equal(
            overlap_evolution(
                small_temporal_trace, first_day=first_day, overlap_levels=[1, 2, 3]
            ),
            streaming_overlap_evolution(
                store, first_day=first_day, overlap_levels=[1, 2, 3]
            ),
        )

    def test_bad_first_day_raises(self, store):
        with pytest.raises(ValueError, match="not in trace"):
            streaming_overlap_evolution(store, first_day=-123)
