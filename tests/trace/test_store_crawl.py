"""Crawler -> trace store composition: incremental per-day appends produce
a store equal to the crawled trace, and the append composes with the
checkpoint/resume machinery (a killed-and-resumed crawl yields a
byte-identical store, because re-appending a replayed day replaces its
segment with the same bytes)."""

import pytest

from repro.checkpoint import Checkpointer
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.runtime import DEFAULT_SEED, Scale, workload_config
from repro.trace.store import open_store, verify_store

DAYS = 4


class SimulatedCrash(Exception):
    """Stands in for SIGKILL: aborts the crawl after a day's checkpoint."""


def build_crawler(store_dir=None) -> Crawler:
    network = build_network(
        NetworkConfig(workload=workload_config(Scale.TINY)), seed=DEFAULT_SEED
    )
    return Crawler(
        network,
        CrawlerConfig(days=DAYS),
        seed=DEFAULT_SEED,
        store_dir=store_dir,
    )


def store_bytes(path):
    return {p.name: p.read_bytes() for p in sorted(path.iterdir())}


def test_crawl_store_matches_trace(tmp_path):
    store_dir = tmp_path / "store"
    trace = build_crawler(store_dir).crawl()
    assert verify_store(store_dir) == []
    with open_store(store_dir) as store:
        assert store.days() == trace.days()
        restored = store.to_trace()
    assert dict(restored.files) == dict(trace.files)
    assert dict(restored.clients) == dict(trace.clients)
    assert all(
        restored.snapshots_on(d) == trace.snapshots_on(d) for d in trace.days()
    )


@pytest.mark.parametrize("kill_day", [0, 2])
def test_killed_and_resumed_crawl_store_is_byte_identical(tmp_path, kill_day):
    ref_dir = tmp_path / "ref-store"
    build_crawler(ref_dir).crawl()

    store_dir = tmp_path / "store"
    checkpoints = Checkpointer(tmp_path / "ckpt")
    crawler = build_crawler(store_dir)

    def crash(day_offset: int) -> None:
        if day_offset == kill_day:
            raise SimulatedCrash

    with pytest.raises(SimulatedCrash):
        crawler.crawl(checkpointer=checkpoints, on_day_end=crash)

    resumed = Crawler.resume_from(checkpoints)
    assert resumed.store_dir == str(store_dir)  # travels in the checkpoint
    resumed.crawl(checkpointer=checkpoints)

    assert verify_store(store_dir) == []
    assert store_bytes(store_dir) == store_bytes(ref_dir)


def test_crash_before_checkpoint_is_replayed_idempotently(tmp_path):
    """A crash *between* the store append and the checkpoint leaves the
    store one day ahead; the resumed crawl replays that day and must
    converge to the reference bytes anyway."""
    ref_dir = tmp_path / "ref-store"
    build_crawler(ref_dir).crawl()

    store_dir = tmp_path / "store"
    checkpoints = Checkpointer(tmp_path / "ckpt")
    crawler = build_crawler(store_dir)

    # Run two full days, then simulate the torn state by rolling the
    # checkpoint back: delete the newest checkpoint so resume restarts at
    # day 1 while the store already holds day 1's segment.
    def crash(day_offset: int) -> None:
        if day_offset == 1:
            raise SimulatedCrash

    with pytest.raises(SimulatedCrash):
        crawler.crawl(checkpointer=checkpoints, on_day_end=crash)
    newest = checkpoints.latest("crawl")
    newest.unlink()

    resumed = Crawler.resume_from(checkpoints)
    assert resumed.next_day_offset == 1  # day 1 will be replayed
    resumed.crawl(checkpointer=checkpoints)

    assert verify_store(store_dir) == []
    assert store_bytes(store_dir) == store_bytes(ref_dir)
