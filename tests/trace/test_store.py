"""The on-disk columnar trace store: round-trips, converters, integrity
verification, idempotent appends, and crash recovery of torn metadata."""

import json

import pytest

from repro.trace.io import (
    convert_trace_file_to_store,
    dumps_trace,
    load_trace,
    save_trace,
    store_to_trace_file,
    trace_to_store,
)
from repro.trace.store import (
    TraceStoreError,
    TraceStoreWriter,
    open_store,
    verify_store,
)
from tests.conftest import build_trace, make_client, make_file


def sample_trace():
    return build_trace(
        {
            1: {0: ["a", "b"], 1: [], 2: ["c"]},
            2: {0: ["b"], 2: ["a", "c"]},
            5: {1: ["a", "b", "c"]},
        },
        clients=[make_client(0), make_client(1), make_client(2)],
        files=[make_file("a"), make_file("b"), make_file("c")],
    )


def traces_equal(a, b) -> bool:
    return (
        dict(a.files) == dict(b.files)
        and dict(a.clients) == dict(b.clients)
        and a.days() == b.days()
        and all(a.snapshots_on(d) == b.snapshots_on(d) for d in a.days())
    )


def store_bytes(path):
    """{file name: content bytes} for every file of a store directory."""
    return {p.name: p.read_bytes() for p in sorted(path.iterdir())}


class TestRoundTrip:
    def test_trace_to_store_and_back(self, tmp_path):
        trace = sample_trace()
        with trace_to_store(trace, tmp_path / "store") as store:
            assert store.days() == [1, 2, 5]
            assert store.num_snapshots == 6
            assert traces_equal(store.to_trace(), trace)

    def test_day_accessors_match_trace(self, tmp_path):
        trace = sample_trace()
        with trace_to_store(trace, tmp_path / "store") as store:
            for day in trace.days():
                assert store.day_snapshots(day) == trace.snapshots_on(day)
                assert store.day_replica_counts(day) == trace.replica_counts(day)

    def test_compiled_day_matches_trace(self, tmp_path):
        trace = sample_trace()
        with trace_to_store(trace, tmp_path / "store") as store:
            for day in trace.days():
                compiled = store.compiled_day(day)
                assert dict(compiled.replica_counts()) == dict(
                    trace.replica_counts(day)
                )
                assert set(compiled.client_ids) == set(trace.observed_clients(day))

    def test_file_converter_round_trip(self, tmp_path):
        trace = sample_trace()
        src = tmp_path / "t.jsonl.gz"
        save_trace(trace, src)
        with convert_trace_file_to_store(src, tmp_path / "store") as store:
            assert traces_equal(store.to_trace(), trace)
        back = tmp_path / "back.jsonl.gz"
        store_to_trace_file(tmp_path / "store", back)
        assert traces_equal(load_trace(back), trace)

    def test_generated_trace_survives(self, tmp_path, small_temporal_trace):
        with trace_to_store(small_temporal_trace, tmp_path / "store") as store:
            assert store.num_snapshots == small_temporal_trace.num_snapshots
            assert verify_store(tmp_path / "store") == []
            day = small_temporal_trace.days()[0]
            assert store.day_snapshots(day) == small_temporal_trace.snapshots_on(day)

    def test_streaming_conversion_is_byte_identical(self, tmp_path):
        # The single-pass streaming converter and the whole-trace path must
        # produce the same store, byte for byte.
        trace = sample_trace()
        src = tmp_path / "t.jsonl"
        save_trace(trace, src)
        convert_trace_file_to_store(src, tmp_path / "streamed").close()
        trace_to_store(load_trace(src), tmp_path / "loaded").close()
        assert store_bytes(tmp_path / "streamed") == store_bytes(
            tmp_path / "loaded"
        )

    def test_non_day_grouped_input_falls_back(self, tmp_path):
        # Interleaved days defeat the streaming pass; the converter must
        # fall back to a whole-trace load and still produce an equal store.
        trace = sample_trace()
        src = tmp_path / "t.jsonl"
        save_trace(trace, src)
        lines = src.read_text().splitlines()
        snaps = [l for l in lines if '"snapshot"' in l]
        rest = [l for l in lines if '"snapshot"' not in l]
        shuffled = tmp_path / "shuffled.jsonl"
        shuffled.write_text("\n".join(rest + snaps[::-1]) + "\n")
        with convert_trace_file_to_store(shuffled, tmp_path / "store") as store:
            assert traces_equal(store.to_trace(), trace)
        assert verify_store(tmp_path / "store") == []

    def test_metadata_only_trace(self, tmp_path):
        from repro.trace.model import Trace

        trace = Trace()
        trace.add_client(make_client(0))
        trace.add_file(make_file("a"))
        src = tmp_path / "t.jsonl"
        save_trace(trace, src)
        with convert_trace_file_to_store(src, tmp_path / "store") as store:
            assert store.days() == []
            assert store.num_files == 1
            assert store.num_clients == 1
            assert traces_equal(store.to_trace(), trace)


class TestWriter:
    def test_create_refuses_existing_store(self, tmp_path):
        TraceStoreWriter.create(tmp_path / "store").close()
        with pytest.raises(TraceStoreError, match="already exists"):
            TraceStoreWriter.create(tmp_path / "store")

    def test_open_requires_manifest(self, tmp_path):
        with pytest.raises(TraceStoreError, match="no trace store"):
            TraceStoreWriter.open(tmp_path / "missing")
        TraceStoreWriter.open(tmp_path / "fresh", create=True).close()
        assert (tmp_path / "fresh" / "manifest.json").exists()

    def test_incremental_append_matches_one_shot(self, tmp_path):
        trace = sample_trace()
        trace_to_store(trace, tmp_path / "oneshot").close()
        # Incremental: metadata interned up front (as append_trace does),
        # then one append_day call per day -> identical bytes.
        with TraceStoreWriter.create(tmp_path / "incremental") as writer:
            writer.register_files(trace.files.values())
            writer.register_clients(trace.clients.values())
            for day in trace.days():
                writer.append_day(day, trace.snapshots_on(day))
        assert store_bytes(tmp_path / "incremental") == store_bytes(
            tmp_path / "oneshot"
        )

    def test_reappending_a_day_replaces_it(self, tmp_path):
        trace = sample_trace()
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            writer.append_trace(trace)
            writer.append_day(
                1, {0: ["c"]}, files=trace.files, clients=trace.clients
            )
        with open_store(tmp_path / "store") as store:
            assert store.day_snapshots(1) == {0: frozenset({"c"})}
            assert store.day_snapshots(2) == trace.snapshots_on(2)
        assert verify_store(tmp_path / "store") == []

    def test_reappend_same_day_is_idempotent(self, tmp_path):
        trace = sample_trace()
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            writer.append_trace(trace)
        before = store_bytes(tmp_path / "store")
        with TraceStoreWriter.open(tmp_path / "store") as writer:
            writer.append_day(
                5, trace.snapshots_on(5), files=trace.files, clients=trace.clients
            )
        assert store_bytes(tmp_path / "store") == before

    def test_unknown_client_without_metadata_raises(self, tmp_path):
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            with pytest.raises(TraceStoreError, match="unknown client"):
                writer.append_day(1, {99: ["a"]})

    def test_unknown_file_without_metadata_raises(self, tmp_path):
        trace = sample_trace()
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            with pytest.raises(TraceStoreError, match="unknown file"):
                writer.append_day(1, {0: ["zz"]}, clients=trace.clients)

    def test_out_of_order_interning_clears_sorted_flag(self, tmp_path):
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            writer.register_files([make_file("m")])
            assert writer._manifest["sorted_intern"] is True
            writer.register_files([make_file("a")])  # sorts before "m"
            assert writer._manifest["sorted_intern"] is False
        with open_store(tmp_path / "store") as store:
            assert store.manifest["sorted_intern"] is False

    def test_negative_day_rejected(self, tmp_path):
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            with pytest.raises(TraceStoreError, match=">= 0"):
                writer.append_day(-1, {})

    def test_torn_metadata_tail_truncated_on_reopen(self, tmp_path):
        trace = sample_trace()
        with TraceStoreWriter.create(tmp_path / "store") as writer:
            writer.append_trace(trace)
        # Simulate a crash after a partial metadata append but before the
        # manifest rewrite: junk bytes past the recorded length.
        files_table = tmp_path / "store" / "files.jsonl"
        intact = files_table.read_bytes()
        files_table.write_bytes(intact + b'{"id": "torn')
        assert verify_store(tmp_path / "store") == []  # hash is byte-limited
        with TraceStoreWriter.open(tmp_path / "store") as writer:
            writer.append_day(
                7, trace.snapshots_on(1), files=trace.files, clients=trace.clients
            )
        # The torn tail is gone and the store is fully consistent again.
        assert files_table.read_bytes() == intact
        assert verify_store(tmp_path / "store") == []


class TestVerify:
    @pytest.fixture()
    def store_path(self, tmp_path):
        trace_to_store(sample_trace(), tmp_path / "store").close()
        return tmp_path / "store"

    def test_clean_store_verifies(self, store_path):
        assert verify_store(store_path) == []

    def test_flipped_segment_byte_detected(self, store_path):
        seg = next(store_path.glob("day-*.seg"))
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF
        seg.write_bytes(bytes(data))
        problems = verify_store(store_path)
        assert any("sha256 mismatch" in p for p in problems)

    def test_truncated_metadata_table_detected(self, store_path):
        table = store_path / "clients.jsonl"
        table.write_bytes(table.read_bytes()[:-10])
        problems = verify_store(store_path)
        assert any("clients.jsonl" in p for p in problems)

    def test_missing_segment_detected(self, store_path):
        next(store_path.glob("day-*.seg")).unlink()
        problems = verify_store(store_path)
        assert any("missing" in p for p in problems)

    def test_tampered_manifest_count_detected(self, store_path):
        manifest_path = store_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["snapshots"] += 1
        manifest_path.write_text(json.dumps(manifest))
        problems = verify_store(store_path)
        assert any("snapshots" in p for p in problems)

    def test_corrupt_manifest_detected(self, store_path):
        (store_path / "manifest.json").write_text("{not json")
        problems = verify_store(store_path)
        assert problems and "manifest" in problems[0]

    def test_wrong_format_detected(self, store_path):
        manifest_path = store_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something/else"
        manifest_path.write_text(json.dumps(manifest))
        problems = verify_store(store_path)
        assert any("format" in p for p in problems)

    def test_open_store_rejects_bad_format(self, store_path):
        manifest_path = store_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something/else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(TraceStoreError, match="format"):
            open_store(store_path)


class TestReader:
    def test_unknown_day_raises(self, tmp_path):
        with trace_to_store(sample_trace(), tmp_path / "store") as store:
            with pytest.raises(KeyError):
                store.segment(99)

    def test_iter_days_releases_segments(self, tmp_path):
        with trace_to_store(sample_trace(), tmp_path / "store") as store:
            for day, seg in store.iter_days():
                assert seg.day == day
            assert store._segments == {}

    def test_segment_columns_are_zero_copy_views(self, tmp_path):
        with trace_to_store(sample_trace(), tmp_path / "store") as store:
            seg = store.segment(1)
            assert isinstance(seg.files, memoryview)
            assert isinstance(seg.cache_column(0), memoryview)
            assert list(seg.offsets)[0] == 0

    def test_dumps_round_trip_through_file(self, tmp_path):
        # store -> trace file -> trace equals direct to_trace() serialization.
        trace = sample_trace()
        trace_to_store(trace, tmp_path / "store").close()
        store_to_trace_file(tmp_path / "store", tmp_path / "back.jsonl")
        with open_store(tmp_path / "store") as store:
            assert dumps_trace(load_trace(tmp_path / "back.jsonl")) == dumps_trace(
                store.to_trace()
            )
