"""Tests for trace serialization and anonymization."""

import pytest

from repro.trace.filtering import duplicate_clients
from repro.trace.io import (
    anonymize,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
)
from tests.conftest import build_trace, make_client, make_file


def sample_trace():
    return build_trace(
        {1: {0: ["a", "b"], 1: []}, 2: {0: ["b"]}},
        clients=[
            make_client(0, nickname="alice", country="DE", asn=3320),
            make_client(1, nickname="bob"),
        ],
        files=[make_file("a", size=123, kind="video"), make_file("b")],
    )


def traces_equal(a, b) -> bool:
    if a.files != b.files or a.clients != b.clients:
        return False
    return list(a.iter_snapshots()) == list(b.iter_snapshots())


class TestRoundTrip:
    def test_string_roundtrip(self):
        trace = sample_trace()
        assert traces_equal(loads_trace(dumps_trace(trace)), trace)

    def test_file_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        assert traces_equal(load_trace(path), trace)

    def test_gzip_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl.gz"
        save_trace(trace, path)
        assert traces_equal(load_trace(path), trace)
        # The file really is gzip.
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"

    def test_generated_trace_roundtrip(self, tmp_path, small_temporal_trace):
        path = tmp_path / "gen.jsonl.gz"
        save_trace(small_temporal_trace, path)
        loaded = load_trace(path)
        assert loaded.num_snapshots == small_temporal_trace.num_snapshots
        assert loaded.files == small_temporal_trace.files


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            loads_trace('{"type": "file", "id": "a", "size": 1}')

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            loads_trace('{"type": "header", "version": 999}')

    def test_unknown_record_type(self):
        text = '{"type": "header", "version": 1}\n{"type": "nope"}'
        with pytest.raises(ValueError, match="nope"):
            loads_trace(text)

    def test_blank_lines_ignored(self):
        text = '{"type": "header", "version": 1}\n\n\n'
        trace = loads_trace(text)
        assert trace.num_snapshots == 0


class TestAnonymize:
    def test_identities_hashed(self):
        trace = sample_trace()
        anon = anonymize(trace)
        assert anon.clients[0].ip != trace.clients[0].ip
        assert anon.clients[0].uid != trace.clients[0].uid
        assert anon.clients[0].nickname != "alice"

    def test_country_and_asn_preserved(self):
        anon = anonymize(sample_trace())
        assert anon.clients[0].country == "DE"
        assert anon.clients[0].asn == 3320

    def test_snapshots_preserved(self):
        trace = sample_trace()
        anon = anonymize(trace)
        assert list(anon.iter_snapshots()) == list(trace.iter_snapshots())

    def test_equality_preserving(self):
        # Two clients sharing an IP still share one after anonymization, so
        # duplicate filtering is unaffected.
        trace = build_trace(
            {1: {0: ["a"], 1: ["b"]}},
            clients=[make_client(0, ip="9.9.9.9"), make_client(1, ip="9.9.9.9")],
        )
        anon = anonymize(trace)
        assert anon.clients[0].ip == anon.clients[1].ip
        assert duplicate_clients(anon) == duplicate_clients(trace)

    def test_salt_changes_output(self):
        trace = sample_trace()
        a = anonymize(trace, salt="one")
        b = anonymize(trace, salt="two")
        assert a.clients[0].ip != b.clients[0].ip
