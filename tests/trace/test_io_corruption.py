"""Trace-I/O integrity: truncation detection, header validation, gzip
sniffing, and collision-free anonymization.

These pin the bugfixes of the trace-store PR: a trace file cut at a record
boundary used to load silently as a smaller trace, the container format was
decided by the file name alone, and anonymize could merge two distinct
identities whose hash prefixes collided.
"""

import gzip
import json

import pytest

import repro.trace.io as trace_io
from repro.trace.io import (
    _collision_free_hashes,
    anonymize,
    load_trace,
    loads_trace,
    save_trace,
)
from tests.conftest import build_trace, make_client, make_file


def sample_trace():
    return build_trace(
        {1: {0: ["a", "b"], 1: []}, 2: {0: ["b"], 1: ["a"]}},
        clients=[make_client(0), make_client(1)],
        files=[make_file("a"), make_file("b")],
    )


class TestTruncationDetected:
    """The pinned regression tests: ``load_trace`` on a truncated trace
    raises instead of returning a silently smaller trace."""

    def test_plain_trace_cut_at_record_boundary(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(sample_trace(), path)
        lines = path.read_text().splitlines(keepends=True)
        cut = tmp_path / "cut.jsonl"
        cut.write_text("".join(lines[:-1]))  # drop the last record, cleanly
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_trace(cut)

    def test_plain_trace_missing_metadata_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(sample_trace(), path)
        lines = path.read_text().splitlines(keepends=True)
        # Drop a *metadata* line (index 1 = first file record): the stream
        # stays well-formed JSONL but no longer matches the header counts.
        cut = tmp_path / "cut.jsonl"
        cut.write_text("".join(lines[:1] + lines[2:]))
        with pytest.raises(ValueError, match="header declares 2 file"):
            load_trace(cut)

    def test_gzip_trace_cut_mid_stream(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_trace(sample_trace(), path)
        data = path.read_bytes()
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_trace(cut)

    def test_gzip_trace_missing_trailer(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_trace(sample_trace(), path)
        data = path.read_bytes()
        cut = tmp_path / "cut.jsonl.gz"
        cut.write_bytes(data[:-4])  # strip the length trailer
        with pytest.raises(ValueError, match="truncated"):
            load_trace(cut)

    def test_intact_trace_still_loads(self, tmp_path):
        for name in ("t.jsonl", "t.jsonl.gz"):
            path = tmp_path / name
            save_trace(sample_trace(), path)
            assert load_trace(path).num_snapshots == 4


class TestHeaderValidation:
    def test_count_mismatch_raises(self):
        text = (
            json.dumps(
                {"type": "header", "version": 1, "snapshots": 7, "files": 0,
                 "clients": 0}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="declares 7 snapshot"):
            loads_trace(text)

    def test_header_without_counts_is_accepted(self):
        # Back-compat: hand-written headers carry no counts; the stream is
        # taken at face value.
        trace = loads_trace('{"type": "header", "version": 1}')
        assert trace.num_snapshots == 0

    def test_duplicate_header_rejected(self):
        text = (
            '{"type": "header", "version": 1}\n'
            '{"type": "header", "version": 1}'
        )
        with pytest.raises(ValueError, match="duplicate header"):
            loads_trace(text)

    def test_record_before_header_rejected(self):
        text = (
            '{"type": "file", "id": "a", "size": 1}\n'
            '{"type": "header", "version": 1}'
        )
        with pytest.raises(ValueError, match="before the header"):
            loads_trace(text)

    def test_matching_counts_load(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(sample_trace(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["files"] == 2
        assert header["clients"] == 2
        assert header["snapshots"] == 4


class TestGzipSniffing:
    """The container format is decided by magic bytes, not the file name."""

    def test_gzip_content_without_gz_suffix(self, tmp_path):
        gz = tmp_path / "t.jsonl.gz"
        save_trace(sample_trace(), gz)
        misnamed = tmp_path / "t.jsonl"  # gzip bytes, plain name
        misnamed.write_bytes(gz.read_bytes())
        assert load_trace(misnamed).num_snapshots == 4

    def test_plain_content_with_gz_suffix(self, tmp_path):
        plain = tmp_path / "t.jsonl"
        save_trace(sample_trace(), plain)
        misnamed = tmp_path / "misnamed.jsonl.gz"  # plain bytes, gz name
        misnamed.write_bytes(plain.read_bytes())
        assert load_trace(misnamed).num_snapshots == 4

    def test_actual_gzip_still_loads(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_trace(sample_trace(), path)
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert load_trace(path).num_snapshots == 4


class TestAnonymizeCollisions:
    def test_prefix_collision_widens_deterministically(self, monkeypatch):
        real_digest = trace_io._digest

        def colliding(salt, value):
            # Force every token into the same 16-char prefix; the full
            # digests still differ, so widening must separate them.
            return "0" * 16 + real_digest(salt, value)[16:]

        monkeypatch.setattr(trace_io, "_digest", colliding)
        out = _collision_free_hashes("s", "uid:", ["u1", "u2", "u3"], 16)
        assert len(set(out.values())) == 3
        assert all(len(v) == 32 for v in out.values())

    def test_distinct_identities_stay_distinct(self, monkeypatch):
        real_digest = trace_io._digest

        def colliding(salt, value):
            return "0" * 16 + real_digest(salt, value)[16:]

        monkeypatch.setattr(trace_io, "_digest", colliding)
        trace = build_trace(
            {1: {0: ["a"], 1: ["b"]}},
            clients=[
                make_client(0, uid="uid-A", ip="1.1.1.1"),
                make_client(1, uid="uid-B", ip="2.2.2.2"),
            ],
        )
        anon = anonymize(trace)
        assert anon.clients[0].uid != anon.clients[1].uid
        assert anon.clients[0].ip != anon.clients[1].ip

    def test_equal_identities_stay_equal_under_widening(self, monkeypatch):
        real_digest = trace_io._digest
        monkeypatch.setattr(
            trace_io,
            "_digest",
            lambda salt, value: "0" * 16 + real_digest(salt, value)[16:],
        )
        trace = build_trace(
            {1: {0: ["a"], 1: ["b"]}},
            clients=[make_client(0, ip="9.9.9.9"), make_client(1, ip="9.9.9.9")],
        )
        anon = anonymize(trace)
        assert anon.clients[0].ip == anon.clients[1].ip

    def test_full_digest_collision_raises(self, monkeypatch):
        monkeypatch.setattr(trace_io, "_digest", lambda salt, value: "f" * 64)
        with pytest.raises(ValueError, match="collision"):
            _collision_free_hashes("s", "uid:", ["u1", "u2"], 16)

    def test_no_collision_keeps_requested_length(self):
        out = _collision_free_hashes("s", "nick:", ["alice", "bob"], 8)
        assert all(len(v) == 8 for v in out.values())
        assert len(set(out.values())) == 2


class TestGarbledInput:
    def test_non_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header", "version": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_random_bytes_raise(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        path.write_bytes(b"\x00\x01\x02garbage that is neither gzip nor json")
        with pytest.raises(ValueError):
            load_trace(path)
