"""Shared-memory transport for compiled traces (PR 8, trace layer).

The sharded runner's contract with :mod:`repro.trace.shm` is threefold:
a trace attached in another process must be *indistinguishable* from the
original (same columns, same seeded draws), the handle must stay
pickle-cheap regardless of trace size, and the segment lifetime must be
owner-controlled — a worker exiting (the resource tracker's moment to
"help") must not unlink the segment, and the owner's close must leave
``/dev/shm`` clean.
"""

import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.requests import iter_requests_compiled
from repro.trace.shm import (
    SEGMENT_PREFIX,
    SharedTraceHandle,
    export_compiled,
)
from repro.util.rng import RngStream

REPO_ROOT = Path(__file__).resolve().parents[2]
SHM_DIR = Path("/dev/shm")


def _our_segments():
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
        return set()
    return {p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*")}


class TestRoundTrip:
    def test_columns_and_queries_identical(self, small_static_trace):
        compiled = small_static_trace.compiled()
        with export_compiled(compiled) as export:
            attached = export.handle.attach()
            clone = attached.trace
            assert clone.file_ids == compiled.file_ids
            assert clone.client_ids == compiled.client_ids
            assert list(clone.cache_offsets) == list(compiled.cache_offsets)
            assert list(clone.cache_files) == list(compiled.cache_files)
            assert list(clone.sharer_offsets) == list(compiled.sharer_offsets)
            assert list(clone.sharer_rows) == list(compiled.sharer_rows)
            assert list(clone.static_counts) == list(compiled.static_counts)
            assert clone.cache_sets == compiled.cache_sets
            assert clone.replica_counts() == compiled.replica_counts()
            assert clone.pair_overlaps() == compiled.pair_overlaps()
            del clone
            attached.close()

    def test_seeded_draws_identical(self, small_static_trace):
        """The request stream is the engine's hottest trace consumer; a
        byte-identical stream over the attached columns is the real
        round-trip criterion."""
        compiled = small_static_trace.compiled()
        original = list(
            iter_requests_compiled(compiled, RngStream(3, "shm-test"))
        )
        with export_compiled(compiled) as export:
            with export.handle.attach() as clone:
                replayed = list(
                    iter_requests_compiled(clone, RngStream(3, "shm-test"))
                )
        assert replayed == original

    def test_reexport_of_attached_trace(self, small_static_trace):
        """A trace whose columns are themselves memoryviews (one attach
        deep) must export again — the coordinator may re-share a trace
        it got from a store segment."""
        compiled = small_static_trace.compiled()
        with export_compiled(compiled) as first:
            with first.handle.attach() as once:
                with export_compiled(once) as second:
                    with second.handle.attach() as twice:
                        assert twice.file_ids == compiled.file_ids
                        assert list(twice.cache_files) == list(
                            compiled.cache_files
                        )


class TestHandle:
    def test_pickle_is_cheap(self, small_static_trace):
        compiled = small_static_trace.compiled()
        with export_compiled(compiled) as export:
            payload = pickle.dumps(export.handle)
            # The whole point: handle size is independent of trace size.
            assert len(payload) < 512
            clone = pickle.loads(payload)
            with clone.attach() as trace:
                assert trace.num_clients == compiled.num_clients

    def test_attach_in_fresh_process(self, small_static_trace):
        """A real subprocess (fresh interpreter, handle via pickle over
        stdin) sees the same columns."""
        compiled = small_static_trace.compiled()
        script = (
            "import pickle, sys\n"
            "handle = pickle.load(sys.stdin.buffer)\n"
            "with handle.attach() as trace:\n"
            "    print(trace.num_clients, trace.num_files,\n"
            "          sum(trace.cache_files), trace.file_ids[0])\n"
        )
        with export_compiled(compiled) as export:
            result = subprocess.run(
                [sys.executable, "-c", script],
                input=pickle.dumps(export.handle),
                capture_output=True,
                check=True,
                cwd=str(REPO_ROOT),
                env={"PYTHONPATH": "src"},
            )
        fields = result.stdout.decode().split()
        assert fields == [
            str(compiled.num_clients),
            str(compiled.num_files),
            str(sum(compiled.cache_files)),
            compiled.file_ids[0],
        ]

    def test_worker_exit_does_not_unlink(self, small_static_trace):
        """The resource-tracker unregister: after an attaching process
        exits (cleanly closing its mapping), the owner and later workers
        must still find the segment."""
        compiled = small_static_trace.compiled()
        script = (
            "import pickle, sys\n"
            "handle = pickle.load(sys.stdin.buffer)\n"
            "attached = handle.attach()\n"
            "attached.close()\n"
        )
        with export_compiled(compiled) as export:
            payload = pickle.dumps(export.handle)
            for _ in range(2):
                subprocess.run(
                    [sys.executable, "-c", script],
                    input=payload,
                    check=True,
                    cwd=str(REPO_ROOT),
                    env={"PYTHONPATH": "src"},
                )
            # Still attachable after two worker lifetimes.
            with export.handle.attach() as trace:
                assert trace.num_clients == compiled.num_clients

    def test_attach_after_unlink_fails(self, small_static_trace):
        compiled = small_static_trace.compiled()
        export = export_compiled(compiled)
        handle = export.handle
        export.close()
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_shape_mismatch_rejected(self, small_static_trace):
        """A handle lying about the shape must fail loudly, not read
        garbage."""
        compiled = small_static_trace.compiled()
        with export_compiled(compiled) as export:
            h = export.handle
            liar = SharedTraceHandle(
                h.name,
                h.num_clients + 100,
                h.num_files + 100,
                h.num_replicas + 100,
                h.blob_len + 100,
            )
            with pytest.raises(ValueError, match="bytes"):
                liar.attach()


class TestLifecycle:
    def test_no_leaked_segments(self, small_static_trace):
        """A full export/attach/close cycle leaves ``/dev/shm`` exactly
        as it found it (satellite 3's leak check, at module grain)."""
        before = _our_segments()
        compiled = small_static_trace.compiled()
        export = export_compiled(compiled)
        attached = export.handle.attach()
        name = export.handle.name
        assert name in _our_segments() - before
        attached.close()
        export.close()
        assert _our_segments() == before

    def test_empty_trace_round_trips(self):
        from repro.trace.model import StaticTrace

        compiled = StaticTrace(caches={}).compiled()
        with export_compiled(compiled) as export:
            with export.handle.attach() as clone:
                assert clone.num_clients == 0
                assert clone.num_files == 0
                assert clone.replica_counts() == {}
