"""Tests for pessimistic cache extrapolation."""

import pytest

from repro.trace.extrapolation import (
    ExtrapolationConfig,
    eligible_clients,
    extrapolate,
)
from tests.conftest import build_trace


class TestConfig:
    def test_defaults_match_paper(self):
        config = ExtrapolationConfig()
        assert config.min_connections == 5
        assert config.min_span_days == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ExtrapolationConfig(min_connections=0)
        with pytest.raises(ValueError):
            ExtrapolationConfig(min_span_days=0)


class TestEligibility:
    def test_too_few_connections(self):
        trace = build_trace({d: {0: ["a"]} for d in (1, 5, 12, 20)})
        assert eligible_clients(trace, ExtrapolationConfig()) == []

    def test_span_too_short(self):
        trace = build_trace({d: {0: ["a"]} for d in (1, 2, 3, 4, 5)})
        assert eligible_clients(trace, ExtrapolationConfig()) == []

    def test_eligible(self):
        trace = build_trace({d: {0: ["a"]} for d in (1, 3, 5, 8, 12)})
        assert eligible_clients(trace, ExtrapolationConfig()) == [0]

    def test_custom_thresholds(self):
        trace = build_trace({d: {0: ["a"]} for d in (1, 4)})
        config = ExtrapolationConfig(min_connections=2, min_span_days=3)
        assert eligible_clients(trace, config) == [0]


class TestExtrapolate:
    def config(self):
        return ExtrapolationConfig(min_connections=2, min_span_days=2)

    def test_gap_filled_with_intersection(self):
        trace = build_trace({1: {0: ["a", "b"]}, 4: {0: ["b", "c"]}})
        out = extrapolate(trace, self.config())
        assert out.cache(0, 2) == frozenset({"b"})
        assert out.cache(0, 3) == frozenset({"b"})

    def test_real_observations_kept_verbatim(self):
        trace = build_trace({1: {0: ["a", "b"]}, 4: {0: ["b", "c"]}})
        out = extrapolate(trace, self.config())
        assert out.cache(0, 1) == frozenset({"a", "b"})
        assert out.cache(0, 4) == frozenset({"b", "c"})

    def test_no_extrapolation_outside_observation_window(self):
        trace = build_trace({2: {0: ["a"]}, 5: {0: ["a"]}})
        out = extrapolate(trace, self.config())
        assert out.cache(0, 1) is None
        assert out.cache(0, 6) is None

    def test_adjacent_days_no_filler(self):
        trace = build_trace({1: {0: ["a"]}, 2: {0: ["b"]}})
        config = ExtrapolationConfig(min_connections=2, min_span_days=1)
        out = extrapolate(trace, config)
        assert out.cache(0, 1) == frozenset({"a"})
        assert out.cache(0, 2) == frozenset({"b"})
        assert out.num_snapshots == 2

    def test_disjoint_caches_give_empty_filler(self):
        trace = build_trace({1: {0: ["a"]}, 4: {0: ["z"]}})
        out = extrapolate(trace, self.config())
        assert out.cache(0, 2) == frozenset()

    def test_ineligible_clients_dropped(self):
        trace = build_trace({1: {0: ["a"], 1: ["b"]}, 4: {0: ["a"]}})
        out = extrapolate(trace, self.config())
        assert set(out.clients) == {0}

    def test_pessimism_never_adds_files(self):
        """The filler is always a subset of both neighbouring caches."""
        trace = build_trace(
            {1: {0: ["a", "b", "c"]}, 5: {0: ["b", "c", "d"]}, 9: {0: ["c"]}}
        )
        out = extrapolate(trace, self.config())
        for day in range(1, 10):
            cache = out.cache(0, day)
            assert cache is not None
            days = [1, 5, 9]
            prev_day = max(d for d in days if d <= day)
            next_day = min(d for d in days if d >= day)
            prev_cache = trace.cache(0, prev_day)
            next_cache = trace.cache(0, next_day)
            assert cache <= (prev_cache | next_cache)

    def test_generated_trace_extrapolation(self, small_temporal_trace):
        out = extrapolate(small_temporal_trace)
        assert len(out.clients) > 0
        # Every kept client satisfies the thresholds.
        for client_id in out.clients:
            days = small_temporal_trace.observation_days(client_id)
            assert len(days) >= 5
            assert days[-1] - days[0] >= 10
        # Extrapolation only adds snapshots, never removes observed ones.
        for client_id in out.clients:
            original = small_temporal_trace.observation_days(client_id)
            extrapolated = out.observation_days(client_id)
            assert set(original) <= set(extrapolated)


class TestFillModes:
    def config(self, fill):
        return ExtrapolationConfig(min_connections=2, min_span_days=2, fill=fill)

    def test_invalid_fill_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="fill"):
            ExtrapolationConfig(fill="interpolate")

    def test_union_fill(self):
        trace = build_trace({1: {0: ["a", "b"]}, 4: {0: ["b", "c"]}})
        out = extrapolate(trace, self.config("union"))
        assert out.cache(0, 2) == frozenset({"a", "b", "c"})

    def test_previous_fill(self):
        trace = build_trace({1: {0: ["a", "b"]}, 4: {0: ["b", "c"]}})
        out = extrapolate(trace, self.config("previous"))
        assert out.cache(0, 2) == frozenset({"a", "b"})
        assert out.cache(0, 3) == frozenset({"a", "b"})

    def test_per_cache_ordering(self):
        """intersection <= previous <= union, per filled day."""
        trace = build_trace(
            {1: {0: ["a", "b", "c"]}, 5: {0: ["b", "c", "d", "e"]}}
        )
        inter = extrapolate(trace, self.config("intersection"))
        prev = extrapolate(trace, self.config("previous"))
        union = extrapolate(trace, self.config("union"))
        for day in (2, 3, 4):
            assert inter.cache(0, day) <= prev.cache(0, day)
            assert prev.cache(0, day) <= union.cache(0, day)

    def test_experiment_runs(self):
        from repro.runtime.scale import Scale
        from repro.experiments.extension_experiments import (
            run_extrapolation_ablation,
        )

        result = run_extrapolation_ablation(scale=Scale.SMALL)
        assert result.metric("intersection_p1") > 0
        assert result.metric("union_p1") > 0
