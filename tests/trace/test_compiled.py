"""Tests for the compiled trace substrate: intern tables, columnar
caches, the inverted index and the overlap kernels."""

from collections import Counter

import pytest

from repro.analysis.semantic import pair_overlaps
from repro.trace.compiled import CompiledTrace, FileInterner
from repro.trace.model import StaticTrace
from repro.util.rng import RngStream
from tests.conftest import build_static


@pytest.fixture
def trace() -> StaticTrace:
    return build_static(
        {
            0: ["beta", "alpha", "gamma"],
            1: ["alpha", "delta"],
            2: [],
            3: ["gamma", "alpha"],
        }
    )


@pytest.fixture
def compiled(trace) -> CompiledTrace:
    return trace.compiled()


class TestInterning:
    def test_monotone_intern(self, compiled):
        """Indices are assigned in sorted string order, so sorting int
        columns visits files in sorted-string order."""
        assert list(compiled.file_ids) == sorted(compiled.file_ids)
        assert compiled.file_idx("alpha") < compiled.file_idx("beta")
        assert compiled.file_idx("beta") < compiled.file_idx("gamma")

    def test_round_trip(self, compiled):
        for idx, fid in enumerate(compiled.file_ids):
            assert compiled.file_idx(fid) == idx
            assert compiled.file_id(idx) == fid
        ids = ["delta", "alpha"]
        assert compiled.to_file_ids(compiled.to_file_indices(ids)) == ids

    def test_unknown_file_raises(self, compiled):
        with pytest.raises(KeyError):
            compiled.file_idx("nope")

    def test_client_rows_keep_caches_order(self, trace, compiled):
        assert list(compiled.client_ids) == list(trace.caches)
        for cid in trace.caches:
            assert compiled.client_ids[compiled.row_of(cid)] == cid


class TestColumns:
    def test_sizes(self, trace, compiled):
        assert compiled.num_clients == len(trace.caches)
        assert compiled.num_files == len(trace.distinct_files())
        assert compiled.total_replicas == trace.total_replicas()

    def test_columns_are_sorted_interned_caches(self, trace, compiled):
        for cid, cache in trace.caches.items():
            column = compiled.cache_column(cid)
            assert list(column) == sorted(column)
            assert compiled.to_file_ids(column) == sorted(cache)
            assert compiled.cache_size(cid) == len(cache)
            assert compiled.cache_set(cid) == set(column)

    def test_shares_matches_caches(self, trace, compiled):
        for cid, cache in trace.caches.items():
            for fid in compiled.file_ids:
                assert compiled.shares(cid, compiled.file_idx(fid)) == (
                    fid in cache
                )

    def test_shares_unknown_client_is_false(self, compiled):
        assert not compiled.shares("ghost", 0)


class TestInvertedIndex:
    def test_sharers_match_caches(self, trace, compiled):
        for fid in compiled.file_ids:
            idx = compiled.file_idx(fid)
            expected = sorted(
                c for c, cache in trace.caches.items() if fid in cache
            )
            assert sorted(compiled.sharer_ids(idx)) == expected
            assert compiled.replica_count(idx) == len(expected)
            rows = list(compiled.sharer_rows_of(idx))
            assert rows == sorted(rows)

    def test_replica_counts_boundary(self, trace, compiled):
        expected = Counter()
        for cache in trace.caches.values():
            expected.update(cache)
        assert compiled.replica_counts() == expected
        assert 0 not in compiled.replica_counts().values()


class TestOverlapKernels:
    def test_overlap_pairwise(self, trace, compiled):
        for a in trace.caches:
            for b in trace.caches:
                assert compiled.overlap(a, b) == len(
                    trace.caches[a] & trace.caches[b]
                )

    def test_pair_overlaps_matches_legacy(self, trace, compiled):
        legacy = pair_overlaps(dict(trace.caches), use_compiled=False)
        assert compiled.pair_overlaps() == legacy
        assert pair_overlaps(compiled) == legacy

    def test_pair_overlaps_with_filter(self, trace, compiled):
        keep = lambda fid: fid != "alpha"
        legacy = pair_overlaps(
            dict(trace.caches), file_filter=keep, use_compiled=False
        )
        assert pair_overlaps(compiled, file_filter=keep) == legacy

    def test_both_kernels_agree(self, compiled):
        mask = [True] * compiled.num_files
        assert compiled._pair_overlaps_counter(None) == compiled.pair_overlaps()
        assert compiled._pair_overlaps_counter(mask) == compiled.pair_overlaps(
            mask
        )

    def test_subsampling_requires_cache_map(self, compiled):
        with pytest.raises(ValueError, match="cache map"):
            pair_overlaps(
                compiled, max_sources_per_file=2, rng=RngStream(0)
            )

    def test_empty_trace(self):
        compiled = StaticTrace(caches={}).compiled()
        assert compiled.num_clients == 0
        assert compiled.num_files == 0
        assert compiled.pair_overlaps() == {}


class TestMemoization:
    def test_compiled_is_cached_on_the_instance(self, trace):
        assert trace.compiled() is trace.compiled()

    def test_invalidate_compiled_recompiles(self, trace):
        first = trace.compiled()
        trace.invalidate_compiled()
        second = trace.compiled()
        assert second is not first
        assert second.file_ids == first.file_ids

    def test_derived_traces_compile_fresh(self, trace):
        derived = trace.without_clients([0])
        assert derived.compiled() is not trace.compiled()
        assert 0 not in derived.compiled().client_row


class TestFileInterner:
    def test_first_seen_order(self):
        interner = FileInterner()
        assert interner.intern("z") == 0
        assert interner.intern("a") == 1
        assert interner.intern("z") == 0
        assert len(interner) == 2

    def test_intern_preserves_set_arithmetic(self):
        interner = FileInterner()
        a = interner.intern_set(["x", "y", "z"])
        b = interner.intern_set(["y", "z", "w"])
        assert len(a & b) == 2
        assert len(a | b) == 4

    def test_intern_cache_map(self):
        caches = {1: frozenset(["a", "b"]), 2: frozenset(["b"])}
        interned = FileInterner().intern_cache_map(caches)
        assert set(interned) == {1, 2}
        assert len(interned[1] & interned[2]) == 1
