"""Regression tests for the replica-count memoization (satellite of the
compiled-trace PR): repeated calls must not re-iterate the snapshots,
and any new observation must invalidate exactly the affected memo."""

from repro.trace.model import Snapshot, StaticTrace, Trace
from tests.conftest import make_client


class CountingFrozenset(frozenset):
    """A frozenset that counts how many times it is iterated."""

    def __new__(cls, iterable=()):
        self = super().__new__(cls, iterable)
        self.iterations = 0
        return self

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


def _trace_with_counting_caches():
    trace = Trace()
    caches = {}
    for cid in (1, 2):
        trace.add_client(make_client(cid))
        caches[cid] = CountingFrozenset({f"f{cid}", "shared"})
        # add_snapshot stores the set as-is (observe() would re-wrap it).
        trace.add_snapshot(Snapshot(0, cid, caches[cid]))
    return trace, caches


class TestDayMemo:
    def test_second_call_does_not_reiterate_snapshots(self):
        trace, caches = _trace_with_counting_caches()
        first = trace.replica_counts(0)
        iterations = [c.iterations for c in caches.values()]
        assert trace.replica_counts(0) == first
        assert [c.iterations for c in caches.values()] == iterations

    def test_returned_counter_is_a_copy(self):
        trace, _ = _trace_with_counting_caches()
        counts = trace.replica_counts(0)
        counts["shared"] = 999
        assert trace.replica_counts(0)["shared"] == 2

    def test_observe_invalidates_only_that_day(self):
        trace, caches = _trace_with_counting_caches()
        day1 = CountingFrozenset({"other"})
        trace.add_snapshot(Snapshot(1, 1, day1))
        trace.replica_counts(0)
        trace.replica_counts(1)
        day1_iterations = day1.iterations

        trace.observe(0, 1, {"f1"})  # re-observe client 1 on day 0
        assert trace.replica_counts(0)["shared"] == 1  # fresh, not stale
        assert trace.replica_counts(1) == {"other": 1}
        assert day1.iterations == day1_iterations  # day-1 memo survived


class TestStaticMemo:
    def test_second_call_does_not_reiterate(self):
        trace, _ = _trace_with_counting_caches()
        first = trace.static_replica_counts()
        # White-box: plant a counting set where the memo build reads from,
        # then drop the memo.  One rebuild of the memo iterates it once;
        # subsequent calls must not.
        probe = CountingFrozenset({"planted"})
        trace._static_caches[99] = probe
        trace._static_counts = None
        rebuilt = trace.static_replica_counts()
        assert rebuilt["planted"] == 1
        assert probe.iterations == 1
        trace.static_replica_counts()
        assert probe.iterations == 1
        assert first["shared"] == 2

    def test_new_snapshot_invalidates(self):
        trace, _ = _trace_with_counting_caches()
        before = trace.static_replica_counts()
        trace.add_client(make_client(3))
        trace.observe(0, 3, {"shared"})
        after = trace.static_replica_counts()
        assert after["shared"] == before["shared"] + 1

    def test_returned_counter_is_a_copy(self):
        trace, _ = _trace_with_counting_caches()
        counts = trace.static_replica_counts()
        counts.clear()
        assert trace.static_replica_counts()["shared"] == 2


class TestStaticTraceMemo:
    def test_replica_counts_memoized_without_reiteration(self):
        cache = CountingFrozenset({"a", "b"})
        static = StaticTrace(caches={1: cache})
        first = static.replica_counts()
        iterations = cache.iterations
        assert static.replica_counts() == first
        assert cache.iterations == iterations

    def test_invalidate_compiled_drops_the_memo(self):
        cache = CountingFrozenset({"a"})
        static = StaticTrace(caches={1: cache})
        static.replica_counts()
        iterations = cache.iterations
        static.invalidate_compiled()
        static.replica_counts()
        assert cache.iterations > iterations

    def test_matches_compiled_counts(self):
        static = StaticTrace(
            caches={1: frozenset({"a", "b"}), 2: frozenset({"b"})}
        )
        static.compiled()
        assert static.replica_counts() == {"a": 1, "b": 2}
