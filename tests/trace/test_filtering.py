"""Tests for duplicate-client filtering."""

from repro.trace.filtering import duplicate_clients, filter_duplicates
from tests.conftest import build_trace, make_client


def trace_with_dupes():
    # 0 and 1 share an IP; 2 and 3 share a UID; 4 is unique; 5 is a
    # free-rider sharing an IP with 0/1.
    clients = [
        make_client(0, ip="1.1.1.1"),
        make_client(1, ip="1.1.1.1"),
        make_client(2, uid="same-uid", ip="2.2.2.2"),
        make_client(3, uid="same-uid", ip="3.3.3.3"),
        make_client(4, ip="4.4.4.4"),
        make_client(5, ip="1.1.1.1"),
    ]
    return build_trace(
        {1: {0: ["a"], 1: ["b"], 2: ["c"], 3: ["d"], 4: ["e"], 5: []}},
        clients=clients,
    )


class TestDuplicateClients:
    def test_detects_ip_and_uid_groups(self):
        dupes = duplicate_clients(trace_with_dupes())
        assert dupes == {0, 1, 2, 3, 5}

    def test_no_dupes(self):
        trace = build_trace({1: {0: ["a"], 1: ["b"]}})
        assert duplicate_clients(trace) == set()


class TestFilterDuplicates:
    def test_removes_sharing_duplicates(self):
        filtered = filter_duplicates(trace_with_dupes())
        assert set(filtered.clients) == {4, 5}

    def test_keeps_free_riders_by_default(self):
        filtered = filter_duplicates(trace_with_dupes())
        assert 5 in filtered.clients

    def test_can_drop_duplicated_free_riders(self):
        filtered = filter_duplicates(trace_with_dupes(), keep_free_riders=False)
        assert set(filtered.clients) == {4}

    def test_snapshots_follow_clients(self):
        filtered = filter_duplicates(trace_with_dupes())
        assert sorted(filtered.observed_clients(1)) == [4, 5]

    def test_file_metadata_preserved(self):
        filtered = filter_duplicates(trace_with_dupes())
        assert "e" in filtered.files

    def test_noop_on_clean_trace(self):
        trace = build_trace({1: {0: ["a"], 1: ["b"]}})
        filtered = filter_duplicates(trace)
        assert set(filtered.clients) == {0, 1}


class TestGeneratedTrace:
    def test_generator_duplicates_are_filtered(self, small_temporal_trace):
        filtered = filter_duplicates(small_temporal_trace)
        assert len(filtered.clients) < len(small_temporal_trace.clients)
        # Filtering is idempotent on non-free-riders.
        twice = filter_duplicates(filtered)
        sharers_once = {
            c for c in filtered.clients if not filtered.is_free_rider(c)
        }
        sharers_twice = {c for c in twice.clients if not twice.is_free_rider(c)}
        assert sharers_once == sharers_twice
