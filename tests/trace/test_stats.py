"""Tests for trace statistics (Table 1 / Figures 1-3 machinery)."""

import pytest

from repro.trace.stats import (
    cache_turnover,
    daily_counts,
    discovery_curve,
    general_characteristics,
    new_files_per_client_per_day,
)
from tests.conftest import build_trace, make_file


class TestGeneralCharacteristics:
    def test_counts(self):
        trace = build_trace(
            {1: {0: ["a"], 1: []}, 3: {0: ["a", "b"]}},
            files=[make_file("a", size=10), make_file("b", size=20)],
        )
        chars = general_characteristics(trace)
        assert chars.duration_days == 3
        assert chars.num_clients == 2
        assert chars.num_free_riders == 1
        assert chars.num_snapshots == 3
        assert chars.num_distinct_files == 2
        assert chars.total_bytes_distinct_files == 30

    def test_free_rider_fraction(self):
        trace = build_trace({1: {0: ["a"], 1: [], 2: [], 3: []}})
        chars = general_characteristics(trace)
        assert chars.free_rider_fraction == pytest.approx(0.75)

    def test_empty_trace(self):
        from repro.trace.model import Trace

        chars = general_characteristics(Trace())
        assert chars.duration_days == 0
        assert chars.free_rider_fraction == 0.0


class TestDailyCounts:
    def test_series(self):
        trace = build_trace({1: {0: ["a", "b"], 1: []}, 2: {0: ["a"]}})
        clients, files, non_empty = daily_counts(trace)
        assert clients.as_dict() == {1.0: 2.0, 2.0: 1.0}
        assert files.as_dict() == {1.0: 2.0, 2.0: 1.0}
        assert non_empty.as_dict() == {1.0: 1.0, 2.0: 1.0}


class TestDiscoveryCurve:
    def test_new_and_total(self):
        trace = build_trace({1: {0: ["a"]}, 2: {0: ["a", "b"]}, 3: {0: ["b"]}})
        new_files, total = discovery_curve(trace)
        assert new_files.as_dict() == {1.0: 1.0, 2.0: 1.0, 3.0: 0.0}
        assert total.as_dict() == {1.0: 1.0, 2.0: 2.0, 3.0: 2.0}

    def test_total_is_monotone_on_generated_trace(self, small_temporal_trace):
        _, total = discovery_curve(small_temporal_trace)
        assert all(b >= a for a, b in zip(total.ys, total.ys[1:]))


class TestNewFilesRate:
    def test_single_day_raises(self):
        trace = build_trace({1: {0: ["a"]}})
        with pytest.raises(ValueError):
            new_files_per_client_per_day(trace)

    def test_rate(self):
        # Day 2: client 0 browses with 2 new files -> 2 new / 1 client.
        trace = build_trace({1: {0: ["a"]}, 2: {0: ["a", "b", "c"]}})
        assert new_files_per_client_per_day(trace) == pytest.approx(2.0)

    def test_positive_on_generated_trace(self, small_temporal_trace):
        assert new_files_per_client_per_day(small_temporal_trace) > 0


class TestCacheTurnover:
    def test_adds_per_day(self):
        trace = build_trace({1: {0: ["a"]}, 3: {0: ["a", "b", "c"]}})
        turnover = cache_turnover(trace)
        # 2 files added over a 2-day gap -> 1 add/day attributed to day 3.
        assert turnover[3] == pytest.approx(1.0)

    def test_no_pairs(self):
        trace = build_trace({1: {0: ["a"]}})
        assert cache_turnover(trace) == {}

    def test_generated_turnover_near_config(
        self, small_temporal_trace, small_config
    ):
        turnover = cache_turnover(small_temporal_trace)
        assert turnover, "expected consecutive observations"
        mean_adds = sum(turnover.values()) / len(turnover)
        # Mean daily additions should be in the ballpark of the configured
        # churn rate; free-riders (74% of clients, zero adds) and evictions
        # inside observation gaps drag the observable mean well below the
        # configured per-sharer rate.
        assert 0.05 * small_config.daily_adds_mean < mean_adds
        assert mean_adds < 2.0 * small_config.daily_adds_mean


class TestMeanCacheSize:
    def test_per_day_means(self):
        from repro.trace.stats import mean_cache_size_series

        trace = build_trace(
            {1: {0: ["a", "b"], 1: ["c"], 2: []}, 2: {0: ["a"], 2: []}}
        )
        series = mean_cache_size_series(trace)
        assert series.as_dict() == {1.0: 1.5, 2.0: 1.0}

    def test_include_free_riders(self):
        from repro.trace.stats import mean_cache_size_series

        trace = build_trace({1: {0: ["a", "b"], 1: []}})
        series = mean_cache_size_series(trace, sharers_only=False)
        assert series.ys == [1.0]

    def test_roughly_constant_on_generated_trace(self, small_temporal_trace):
        """The conclusion's claim: cache sizes stay roughly constant even
        though content turns over."""
        from repro.trace.stats import mean_cache_size_series

        series = mean_cache_size_series(small_temporal_trace)
        assert len(series) > 5
        # Ignore the first days (initial fill ramps); the steady-state
        # mean never drifts by more than 50% around its own average.
        steady = series.ys[2:]
        mid = sum(steady) / len(steady)
        assert all(0.5 * mid < y < 1.5 * mid for y in steady)
