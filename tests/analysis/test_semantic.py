"""Tests for semantic-clustering analyses."""

import pytest

from repro.analysis.semantic import (
    clustering_correlation,
    mean_overlap_decay,
    overlap_evolution,
    pair_overlaps,
    popularity_band_filter,
)
from repro.util.cdf import Series
from repro.util.rng import RngStream
from tests.conftest import build_trace


class TestPairOverlaps:
    def test_exact_counts(self):
        caches = {
            0: frozenset({"a", "b", "c"}),
            1: frozenset({"a", "b"}),
            2: frozenset({"c"}),
            3: frozenset({"z"}),
        }
        overlaps = pair_overlaps(caches)
        assert overlaps[(0, 1)] == 2
        assert overlaps[(0, 2)] == 1
        assert (1, 2) not in overlaps
        assert (0, 3) not in overlaps

    def test_file_filter(self):
        caches = {0: frozenset({"a", "b"}), 1: frozenset({"a", "b"})}
        overlaps = pair_overlaps(caches, file_filter=lambda f: f == "a")
        assert overlaps == {(0, 1): 1}

    def test_subsampling_requires_rng(self):
        caches = {i: frozenset({"hot"}) for i in range(5)}
        with pytest.raises(ValueError):
            pair_overlaps(caches, max_sources_per_file=2)

    def test_subsampling_caps_fanout(self):
        caches = {i: frozenset({"hot"}) for i in range(20)}
        overlaps = pair_overlaps(
            caches, max_sources_per_file=5, rng=RngStream(0)
        )
        # at most C(5,2) pairs from the capped file
        assert len(overlaps) <= 10


class TestClusteringCorrelation:
    def test_perfect_clique(self):
        """All peers share everything: P(n+1 | n) = 100% until the cache
        size bound."""
        caches = {i: frozenset({"a", "b", "c", "d"}) for i in range(6)}
        series = clustering_correlation(caches, min_pairs=1)
        assert series.ys[0] == pytest.approx(100.0)
        assert series.ys[1] == pytest.approx(100.0)
        assert series.ys[2] == pytest.approx(100.0)
        assert series.y_at(4) == pytest.approx(0.0)

    def test_exact_two_level(self):
        # 3 pairs with overlap 1, 1 pair with overlap 2:
        # P(>=2 | >=1) = 1/4.
        caches = {
            0: frozenset({"a", "b"}),
            1: frozenset({"a", "b"}),
            2: frozenset({"c", "a"}),
            3: frozenset({"c"}),
        }
        # pairs: (0,1)=2, (0,2)=1, (1,2)=1, (2,3)=1
        series = clustering_correlation(caches, min_pairs=1)
        assert series.y_at(1) == pytest.approx(25.0)

    def test_empty(self):
        series = clustering_correlation({0: frozenset()})
        assert len(series) == 0

    def test_min_pairs_truncates(self):
        caches = {
            0: frozenset({"a", "b"}),
            1: frozenset({"a", "b"}),
        }
        series = clustering_correlation(caches, min_pairs=5)
        assert len(series) == 0


class TestPopularityBandFilter:
    def test_band(self):
        caches = {
            0: frozenset({"rare", "mid", "hot"}),
            1: frozenset({"mid", "hot"}),
            2: frozenset({"hot"}),
        }
        accept = popularity_band_filter(caches, 2, 2)
        assert accept("mid")
        assert not accept("rare")
        assert not accept("hot")

    def test_kind_restriction(self):
        caches = {0: frozenset({"x", "y"}), 1: frozenset({"x", "y"})}
        accept = popularity_band_filter(
            caches, 1, 10, kind_of={"x": "audio", "y": "video"}, kind="audio"
        )
        assert accept("x")
        assert not accept("y")

    def test_kind_without_mapping_raises(self):
        caches = {0: frozenset({"x"})}
        accept = popularity_band_filter(caches, 1, 10, kind=None)
        assert accept("x")
        bad = popularity_band_filter(caches, 1, 10, kind="audio")
        with pytest.raises(ValueError):
            bad("x")


class TestOverlapEvolution:
    def build(self):
        # Pair (0,1) overlaps 2 on day 1 and keeps it; pair (2,3) overlaps
        # 1 and loses it.
        return build_trace(
            {
                1: {0: ["a", "b"], 1: ["a", "b"], 2: ["c"], 3: ["c"]},
                2: {0: ["a", "b"], 1: ["a", "b"], 2: ["c"], 3: ["x"]},
                3: {0: ["a", "b", "z"], 1: ["a", "b"], 2: ["y"], 3: ["x"]},
            }
        )

    def test_groups_and_values(self):
        series = overlap_evolution(self.build(), first_day=1)
        by_name = {s.name: s for s in series}
        two = by_name["2 Common Files, 1 Pairs"]
        assert two.ys == [2.0, 2.0, 2.0]
        one = by_name["1 Common Files, 1 Pairs"]
        assert one.ys == [1.0, 0.0, 0.0]

    def test_level_selection(self):
        series = overlap_evolution(
            self.build(), first_day=1, overlap_levels=[2]
        )
        assert len(series) == 1
        assert series[0].name.startswith("2 Common Files")

    def test_unknown_first_day(self):
        with pytest.raises(ValueError):
            overlap_evolution(self.build(), first_day=99)

    def test_missing_observation_skips_pair(self):
        trace = build_trace(
            {
                1: {0: ["a"], 1: ["a"]},
                2: {0: ["a"]},  # client 1 unobserved on day 2
                3: {0: ["a"], 1: ["a"]},
            }
        )
        series = overlap_evolution(trace, first_day=1)
        assert series[0].xs == [1.0, 3.0]

    def test_subsampling_keeps_full_count_in_name(self):
        caches = {i: ["a"] for i in range(30)}
        trace = build_trace({1: caches, 2: caches})
        series = overlap_evolution(trace, first_day=1, max_pairs_per_level=10)
        assert "435 Pairs" in series[0].name  # C(30,2)


class TestDecayMetric:
    def test_values(self):
        assert mean_overlap_decay(Series("s", [1, 2], [4.0, 2.0])) == 0.5
        assert mean_overlap_decay(Series("s", [1, 2], [0.0, 1.0])) == 0.0

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            mean_overlap_decay(Series("s", [1], [1.0]))
