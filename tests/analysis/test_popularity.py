"""Tests for popularity/rank analyses."""

import pytest

from repro.analysis.popularity import (
    file_spread,
    max_spread_fraction,
    rank_evolution,
    rank_of_files,
    rank_replication,
    top_files_on,
)
from tests.conftest import build_trace


def popularity_trace():
    return build_trace(
        {
            1: {0: ["hot", "warm"], 1: ["hot"], 2: ["hot", "cold"]},
            2: {0: ["hot"], 1: ["warm"], 2: ["warm", "cold"]},
        }
    )


class TestRankReplication:
    def test_sorted_descending(self):
        series = rank_replication(popularity_trace(), 1)
        assert series.xs == [1.0, 2.0, 3.0]
        assert series.ys == [3.0, 1.0, 1.0]

    def test_max_rank_truncates(self):
        series = rank_replication(popularity_trace(), 1, max_rank=2)
        assert len(series) == 2

    def test_missing_day_empty(self):
        series = rank_replication(popularity_trace(), 42)
        assert len(series) == 0


class TestTopFiles:
    def test_top_files_on(self):
        assert top_files_on(popularity_trace(), 1, 1) == ["hot"]
        assert top_files_on(popularity_trace(), 2, 2) == ["warm", "cold"]

    def test_rank_of_files(self):
        ranks = rank_of_files(popularity_trace(), 1)
        assert ranks["hot"] == 1
        assert set(ranks.values()) == {1, 2, 3}


class TestFileSpread:
    def test_percentages(self):
        series = file_spread(popularity_trace(), file_ids=["hot"])
        assert series[0].ys == [pytest.approx(100.0), pytest.approx(100 / 3)]

    def test_default_tracks_top_static(self):
        series = file_spread(popularity_trace(), top_k=2)
        assert len(series) == 2
        assert series[0].name == "#1"

    def test_reference_day(self):
        series = file_spread(popularity_trace(), top_k=1, reference_day=2)
        # top of day 2 is "warm" (2 sources)
        assert series[0].ys[0] == pytest.approx(100 / 3)


class TestRankEvolution:
    def test_ranks_tracked(self):
        series = rank_evolution(popularity_trace(), reference_day=1, top_k=1)
        # "hot": rank 1 on day 1; on day 2 it ties with "cold" at one
        # source behind "warm", and the id tiebreak puts it at rank 3.
        assert series[0].ys == [1.0, 3.0]

    def test_gaps_for_unobserved_files(self):
        trace = build_trace(
            {1: {0: ["x"], 1: ["x"]}, 2: {0: ["y"]}, 3: {0: ["x"]}}
        )
        series = rank_evolution(trace, reference_day=1, top_k=1)
        assert series[0].xs == [1.0, 3.0]  # absent on day 2


class TestMaxSpread:
    def test_value(self):
        assert max_spread_fraction(popularity_trace()) == pytest.approx(1.0)

    def test_generated_trace_spread_is_small(self, small_temporal_trace):
        """The paper's qualitative point: even the most popular file is
        held by a small fraction of clients."""
        spread = max_spread_fraction(small_temporal_trace)
        assert 0 < spread < 0.25

    def test_shock_files_rise_and_decay(self, small_temporal_trace):
        """Figure 8's shape: the most-replicated files show a rise to a
        peak followed by decay (not monotone growth)."""
        series = file_spread(small_temporal_trace, top_k=4)
        shaped = 0
        for s in series:
            if len(s) < 5:
                continue
            peak_index = s.ys.index(max(s.ys))
            rises = peak_index > 0 and s.ys[peak_index] > s.ys[0]
            decays = s.ys[-1] < s.ys[peak_index]
            if rises and decays:
                shaped += 1
        assert shaped >= 1
