"""Tests for contribution / file-size analyses."""

import pytest

from repro.analysis.contribution import (
    contribution_cdfs,
    generosity_concentration,
    size_cdf_by_popularity,
)
from tests.conftest import build_static, make_file

KB = 1024
MB = 1024 * 1024


class TestSizeCdf:
    def test_popularity_thresholds(self):
        files = [
            make_file("small", size=500 * KB),
            make_file("large", size=700 * MB),
        ]
        static = build_static(
            {0: ["small", "large"], 1: ["large"], 2: ["large"]}, files=files
        )
        series = size_cdf_by_popularity(static, (1, 2))
        all_files, popular = series
        assert len(all_files) == 2
        # Only "large" has popularity >= 2.
        assert len(popular) == 1
        assert popular.xs[0] == pytest.approx(700 * 1024)

    def test_empty_threshold_class(self):
        static = build_static({0: ["a"]})
        series = size_cdf_by_popularity(static, (99,))
        assert len(series[0]) == 0

    def test_sizes_in_kb(self):
        static = build_static({0: ["a"]}, files=[make_file("a", size=2048)])
        series = size_cdf_by_popularity(static, (1,))
        assert series[0].xs[0] == pytest.approx(2.0)


class TestContributionCdfs:
    def test_free_rider_handling(self):
        static = build_static(
            {0: ["a", "b"], 1: [], 2: ["a"]},
            files=[make_file("a", size=MB), make_file("b", size=MB)],
        )
        cdfs = contribution_cdfs(static)
        # full includes the free-rider at 0 files
        assert cdfs["files_full"].ys[-1] == pytest.approx(1.0)
        assert min(cdfs["files_full"].xs) == 0.0
        # sharers-only excludes it
        assert min(cdfs["files_sharers"].xs) == 1.0

    def test_space_in_gb(self):
        static = build_static(
            {0: ["a"]}, files=[make_file("a", size=2 * 1024**3)]
        )
        cdfs = contribution_cdfs(static)
        assert cdfs["space_sharers"].xs[0] == pytest.approx(2.0)


class TestGenerosityConcentration:
    def test_uniform(self):
        static = build_static({i: [f"f{i}a", f"f{i}b"] for i in range(10)})
        # top 10% = 1 of 10 equal sharers -> 10% of files
        assert generosity_concentration(static, 0.10) == pytest.approx(0.1)

    def test_skewed(self):
        caches = {0: [f"x{i}" for i in range(90)]}
        caches.update({i: [f"y{i}"] for i in range(1, 11)})
        static = build_static(caches)
        assert generosity_concentration(static, 0.10) == pytest.approx(0.9)

    def test_no_sharers_raises(self):
        static = build_static({0: [], 1: []})
        with pytest.raises(ValueError):
            generosity_concentration(static)


class TestGeneratedWorkload:
    def test_paper_shape_holds(self, small_static_trace):
        """Free-riding dominant, sharing skewed (Figure 7's shape)."""
        free = len(small_static_trace.free_riders())
        assert free / small_static_trace.num_clients > 0.6
        concentration = generosity_concentration(small_static_trace, 0.15)
        assert concentration > 0.4

    def test_popular_files_skew_large(self, small_static_trace):
        """Figure 6: popular files are much bigger than average files."""
        series = size_cdf_by_popularity(small_static_trace, (1, 5))
        all_files, popular = series
        if len(popular) < 10:
            import pytest as _pytest

            _pytest.skip("not enough popular files at this scale")

        def median(s):
            return next(
                (x for x, p in zip(s.xs, s.ys) if p >= 0.5), s.xs[-1]
            )

        assert median(popular) > median(all_files)


class TestTemporalContribution:
    def test_mean_of_observed_caches(self):
        from repro.analysis.contribution import temporal_contribution_cdfs
        from tests.conftest import build_trace

        trace = build_trace(
            {
                1: {0: ["a", "b"], 1: []},
                2: {0: ["a", "b", "c", "d"], 1: []},
            },
            files=[make_file(f, size=MB) for f in ("a", "b", "c", "d")],
        )
        cdfs = temporal_contribution_cdfs(trace)
        # client 0's mean observed cache: (2 + 4) / 2 = 3 files
        assert cdfs["files_sharers"].xs == [3.0]
        # client 1 is a free-rider: included in full, excluded from sharers
        assert min(cdfs["files_full"].xs) == 0.0
        # mean space: (2MB + 4MB)/2 = 3MB in GB
        assert cdfs["space_sharers"].xs[0] == pytest.approx(3 / 1024)

    def test_instantaneous_below_union(self, small_temporal_trace):
        """The temporal (mean observed) view gives smaller per-client
        contributions than the union-over-days static view — the reason
        Figure 7 uses it."""
        from repro.analysis.contribution import (
            contribution_cdfs,
            temporal_contribution_cdfs,
        )

        temporal = temporal_contribution_cdfs(small_temporal_trace)
        static = contribution_cdfs(small_temporal_trace.to_static())
        mean_temporal = sum(temporal["files_sharers"].xs) / len(
            temporal["files_sharers"].xs
        )
        mean_static = sum(static["files_sharers"].xs) / len(
            static["files_sharers"].xs
        )
        assert mean_temporal < mean_static
