"""Tests for geographic analyses."""

import pytest

from repro.analysis.geographic import (
    country_histogram,
    home_locality_cdf,
    static_home_locality_cdf,
    top_as_concentration,
    top_as_table,
)
from tests.conftest import build_static, build_trace, make_client


def geo_trace():
    clients = [
        make_client(0, country="FR", asn=3215),
        make_client(1, country="FR", asn=3215),
        make_client(2, country="FR", asn=12322),
        make_client(3, country="DE", asn=3320),
        make_client(4, country="DE", asn=3320),
        make_client(5, country="ES", asn=3352),
    ]
    # "local" lives entirely in FR; "global" is spread across countries.
    return build_trace(
        {
            1: {
                0: ["local", "global"],
                1: ["local"],
                2: ["local", "global"],
                3: ["global"],
                4: ["global"],
                5: ["global"],
            }
        },
        clients=clients,
    )


class TestCountryHistogram:
    def test_counts_and_order(self):
        rows = country_histogram(geo_trace())
        assert rows[0][0] == "FR"
        assert rows[0][1] == 3
        assert rows[0][2] == pytest.approx(0.5)

    def test_empty_trace_raises(self):
        from repro.trace.model import Trace

        with pytest.raises(ValueError):
            country_histogram(Trace())


class TestTopAsTable:
    def test_rows(self):
        rows = top_as_table(geo_trace(), k=2)
        assert rows[0].asn in (3215, 3320)
        by_asn = {r.asn: r for r in rows}
        assert by_asn[3215].national_share == pytest.approx(2 / 3)
        assert by_asn[3215].global_share == pytest.approx(2 / 6)
        assert by_asn[3215].country == "FR"

    def test_concentration(self):
        assert top_as_concentration(geo_trace(), k=10) == pytest.approx(1.0)


class TestHomeLocalityCdf:
    def test_local_file_fully_home(self):
        series = home_locality_cdf(
            geo_trace(), level="country", popularity_thresholds=(1,)
        )
        cdf = series[0]
        # "local": 3/3 FR = 100% home; "global": 2 FR of 5 sources = 40%.
        assert cdf.xs[0] == pytest.approx(40.0)
        assert cdf.xs[-1] == pytest.approx(100.0)

    def test_threshold_excludes_rare(self):
        series = home_locality_cdf(
            geo_trace(), level="country", popularity_thresholds=(100,)
        )
        assert len(series[0]) == 0

    def test_as_level(self):
        series = home_locality_cdf(
            geo_trace(), level="as", popularity_thresholds=(1,)
        )
        assert len(series[0]) > 0

    def test_bad_level(self):
        with pytest.raises(ValueError):
            home_locality_cdf(geo_trace(), level="continent")


class TestStaticHomeLocality:
    def test_static_variant(self):
        static = build_static(
            {0: ["x"], 1: ["x"], 2: ["x"]},
            clients=[
                make_client(0, country="FR"),
                make_client(1, country="FR"),
                make_client(2, country="DE"),
            ],
        )
        series = static_home_locality_cdf(static, min_sources=2)
        assert series.xs[-1] == pytest.approx(100 * 2 / 3)

    def test_bad_level(self):
        static = build_static({0: ["x"]})
        with pytest.raises(ValueError):
            static_home_locality_cdf(static, level="nope")


class TestGeneratedTraceLocality:
    def test_unpopular_files_more_home_concentrated(self, small_temporal_trace):
        """The planted geographic clustering: rare files are more home-
        concentrated than popular files (Figure 11's ordering)."""
        # Average-popularity classes rescaled for reproduction scale, as
        # in run_figure11 (the ratio sources/days-seen tops out near 1.5).
        series = home_locality_cdf(
            small_temporal_trace,
            level="country",
            popularity_thresholds=(0.1, 1.2),
        )
        rare, popular = series
        if len(rare) == 0 or len(popular) == 0:
            pytest.skip("not enough files per class at this scale")

        def median_x(s):
            return next((x for x, p in zip(s.xs, s.ys) if p >= 0.5), s.xs[-1])

        assert median_x(rare) >= median_x(popular)
