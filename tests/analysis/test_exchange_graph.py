"""Tests for the exchange-graph analysis."""

import pytest

from repro.analysis.exchange_graph import (
    build_exchange_graph,
    degree_skew,
    largest_dense_community,
    reciprocity,
    summarize_exchanges,
    undirected_clustering,
)


class TestBuild:
    def test_edges_and_weights(self):
        graph = build_exchange_graph({(1, 2): 3, (2, 1): 1, (1, 3): 1})
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert graph[1][2]["weight"] == 3

    def test_empty(self):
        graph = build_exchange_graph({})
        assert graph.number_of_nodes() == 0


class TestReciprocity:
    def test_fully_reciprocal(self):
        graph = build_exchange_graph({(1, 2): 1, (2, 1): 1})
        assert reciprocity(graph) == 1.0

    def test_one_way(self):
        graph = build_exchange_graph({(1, 2): 1, (1, 3): 1})
        assert reciprocity(graph) == 0.0

    def test_mixed(self):
        graph = build_exchange_graph({(1, 2): 1, (2, 1): 1, (1, 3): 1, (1, 4): 1})
        assert reciprocity(graph) == 0.5

    def test_empty(self):
        assert reciprocity(build_exchange_graph({})) == 0.0


class TestDegreeSkew:
    def test_uniform(self):
        graph = build_exchange_graph({(1, 2): 1, (2, 3): 1, (3, 1): 1})
        assert degree_skew(graph) == pytest.approx(1.0)

    def test_hub(self):
        edges = {(0, i): 1 for i in range(1, 10)}
        edges[(1, 2)] = 1
        graph = build_exchange_graph(edges)
        assert degree_skew(graph) > 1.5

    def test_empty(self):
        assert degree_skew(build_exchange_graph({})) == 0.0


class TestClusteringAndCores:
    def test_triangle_clusters(self):
        graph = build_exchange_graph({(1, 2): 1, (2, 3): 1, (3, 1): 1})
        assert undirected_clustering(graph) == pytest.approx(1.0)

    def test_star_does_not_cluster(self):
        graph = build_exchange_graph({(0, i): 1 for i in range(1, 6)})
        assert undirected_clustering(graph) == 0.0

    def test_dense_community_found(self):
        # A 5-clique plus a dangling chain.
        edges = {}
        clique = [10, 11, 12, 13, 14]
        for i in clique:
            for j in clique:
                if i < j:
                    edges[(i, j)] = 1
        edges[(14, 20)] = 1
        edges[(20, 21)] = 1
        graph = build_exchange_graph(edges)
        assert largest_dense_community(graph) == 5

    def test_empty_core(self):
        assert largest_dense_community(build_exchange_graph({})) == 0


class TestSummary:
    def test_rows_render(self):
        summary = summarize_exchanges({(1, 2): 1, (2, 1): 2})
        rows = dict(summary.rows())
        assert rows["nodes (peers that exchanged)"] == 2
        assert summary.reciprocity == 1.0
        assert summary.components == 1

    def test_on_simulation_output(self, small_static_trace):
        from repro.core.search import SearchConfig, simulate_search

        result = simulate_search(
            small_static_trace,
            SearchConfig(
                list_size=10, track_load=False, track_exchanges=True, seed=1
            ),
        )
        assert result.exchanges is not None
        total_uploads = sum(result.exchanges.values())
        assert total_uploads == result.rates.requests
        summary = summarize_exchanges(result.exchanges)
        assert summary.nodes > 0
        assert 0.0 <= summary.reciprocity <= 1.0

    def test_exchanges_disabled_by_default(self, small_static_trace):
        from repro.core.search import SearchConfig, simulate_search

        result = simulate_search(
            small_static_trace, SearchConfig(list_size=5, track_load=False, seed=1)
        )
        assert result.exchanges is None


class TestExperiment:
    def test_run_exchange_graph(self):
        from repro.runtime.scale import Scale
        from repro.experiments.extension_experiments import run_exchange_graph

        result = run_exchange_graph(scale=Scale.SMALL)
        assert result.metric("nodes") > 10
        assert 0.0 < result.metric("reciprocity") < 1.0
        assert result.metric("largest_core") >= 3
