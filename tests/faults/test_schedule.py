"""FaultSchedule: windows, merging, JSON round-trip, and the two
determinism contracts (empty schedule = byte-identity; fixed seed =
reproducible storm)."""

import dataclasses

import pytest

from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultSchedule,
    FaultWindow,
    ramping_loss,
)
from repro.trace.io import dumps_trace
from repro.util.rng import RngStream
from repro.workload.config import WorkloadConfig


class TestFaultWindow:
    def test_covers_half_open_interval(self):
        window = FaultWindow(start=2, end=5)
        assert [d for d in range(8) if window.covers(d)] == [2, 3, 4]

    def test_open_ended_window(self):
        window = FaultWindow(start=3)
        assert window.covers(3) and window.covers(1000)
        assert not window.covers(2)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultWindow(start=-1)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="end"):
            FaultWindow(start=3, end=3)

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultWindow(start=0, overrides={"loss_rete": 0.1})

    def test_invalid_override_value_rejected_eagerly(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FaultWindow(start=0, overrides={"loss_rate": 1.5})


class TestConfigOn:
    def test_uncovered_day_returns_base_object(self):
        base = FaultConfig(loss_rate=0.1)
        schedule = FaultSchedule(
            windows=(FaultWindow(start=5, end=6, overrides={"loss_rate": 0.5}),)
        )
        assert schedule.config_on(0, base) is base

    def test_covering_window_overrides(self):
        schedule = FaultSchedule(
            windows=(FaultWindow(start=0, end=2, overrides={"loss_rate": 0.5}),)
        )
        assert schedule.config_on(1, FaultConfig()).loss_rate == 0.5
        assert schedule.config_on(2, FaultConfig()).loss_rate == 0.0

    def test_later_windows_win(self):
        schedule = FaultSchedule(
            windows=(
                FaultWindow(start=0, overrides={"loss_rate": 0.1}),
                FaultWindow(start=2, overrides={"loss_rate": 0.4}),
            )
        )
        assert schedule.config_on(1, FaultConfig()).loss_rate == 0.1
        assert schedule.config_on(3, FaultConfig()).loss_rate == 0.4

    def test_empty_and_horizon(self):
        no_op = FaultSchedule(windows=(FaultWindow(start=0, end=4),))
        assert no_op.empty
        storm = ramping_loss([0.1, 0.2], days_per_step=3)
        assert not storm.empty
        assert storm.horizon() == 6
        assert FaultSchedule(windows=(FaultWindow(start=0),)).horizon() is None


class TestJsonRoundTrip:
    def test_round_trip(self):
        schedule = FaultSchedule(
            windows=(
                FaultWindow(start=0, end=4, overrides={"loss_rate": 0.05}),
                FaultWindow(start=4, overrides={"peer_downtime": 0.3}),
            )
        )
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_save_load(self, tmp_path):
        schedule = ramping_loss([0.1, 0.3])
        path = tmp_path / "storm.json"
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            FaultSchedule.from_json('{"schema": "nope", "windows": []}')

    def test_malformed_days_rejected(self):
        with pytest.raises(ValueError, match="days"):
            FaultSchedule.from_json(
                '{"schema": "repro.faults.schedule/1", '
                '"windows": [{"days": [3]}]}'
            )


class TestInjectorWiring:
    def test_schedule_changes_effective_config_per_day(self):
        schedule = ramping_loss([0.2, 0.6], days_per_step=1)
        injector = FaultInjector(
            FaultConfig(), RngStream(0, "faults"), schedule=schedule
        )
        assert injector.active
        injector.advance_day(0, [])
        assert injector.enabled
        assert injector.config.loss_rate == 0.2
        injector.advance_day(1, [])
        assert injector.config.loss_rate == 0.6
        injector.advance_day(2, [])
        assert injector.config.loss_rate == 0.0
        assert not injector.enabled  # past the storm: back to the base
        assert injector.base_config == FaultConfig()

    def test_empty_schedule_is_inactive(self):
        injector = FaultInjector(
            FaultConfig(),
            RngStream(0, "faults"),
            schedule=FaultSchedule(windows=(FaultWindow(start=0, end=3),)),
        )
        assert not injector.active


def _crawl(schedule, days=4, seed=3):
    workload = dataclasses.replace(
        WorkloadConfig().small(),
        num_clients=40,
        num_files=600,
        days=days,
        mainstream_pool_size=40,
    )
    network = build_network(
        NetworkConfig(workload=workload, fault_schedule=schedule), seed=seed
    )
    crawler = Crawler(network, CrawlerConfig(days=days), seed=seed)
    return dumps_trace(crawler.crawl())


class TestDeterminismContracts:
    def test_all_empty_schedule_is_byte_identical_to_none(self):
        no_op = FaultSchedule(
            windows=(FaultWindow(start=0, end=2), FaultWindow(start=2))
        )
        assert _crawl(schedule=no_op) == _crawl(schedule=None)

    def test_ramping_loss_reproduces_under_fixed_seed(self):
        storm = ramping_loss([0.1, 0.3], days_per_step=2)
        first = _crawl(schedule=storm)
        second = _crawl(schedule=storm)
        assert first == second
        # ...and the storm actually bites: the trace differs from calm.
        assert first != _crawl(schedule=None)


class TestCrashRecoveryCycles:
    def test_repeated_crash_and_recovery_windows(self):
        """Two crash/recovery cycles driven purely by the schedule.

        Each window covers both its crash day and its recovery day, as
        ``server_events`` documents — that is what makes the cycle fire.
        """
        schedule = FaultSchedule(
            windows=(
                FaultWindow(
                    start=1,
                    end=3,
                    overrides={"server_crash_day": 1, "server_downtime_days": 1},
                ),
                FaultWindow(
                    start=4,
                    end=6,
                    overrides={"server_crash_day": 4, "server_downtime_days": 1},
                ),
            )
        )
        injector = FaultInjector(
            FaultConfig(), RngStream(0, "faults"), schedule=schedule
        )
        log = []
        for day in range(7):
            injector.advance_day(day, [])
            crashes, recoveries = injector.server_events(day)
            log.extend((day, "crash", s) for s in crashes)
            log.extend((day, "recover", s) for s in recoveries)
        assert log == [
            (1, "crash", 0),
            (2, "recover", 0),
            (4, "crash", 0),
            (5, "recover", 0),
        ]
