"""FaultConfig validation and the `enabled` gate."""

import pytest

from repro.faults import FaultConfig


class TestValidation:
    def test_defaults_are_valid_and_disabled(self):
        config = FaultConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "field", ["loss_rate", "slow_rate", "malformed_rate", "peer_downtime"]
    )
    def test_rates_must_be_fractions(self, field):
        with pytest.raises(ValueError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultConfig(**{field: -0.1})

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultConfig(deadline=0)

    def test_server_crash_day_must_be_non_negative(self):
        with pytest.raises(ValueError):
            FaultConfig(server_crash_day=-1)
        FaultConfig(server_crash_day=0)  # day 0 is a valid crash day


class TestEnabled:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_rate": 0.01},
            {"slow_rate": 0.01},
            {"malformed_rate": 0.01},
            {"peer_downtime": 0.01},
            {"server_crash_day": 3},
            {"server_crash_day": 0},
        ],
    )
    def test_any_knob_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    def test_deadline_alone_does_not_enable(self):
        # A deadline only matters when something is slow.
        assert not FaultConfig(deadline=1.0).enabled


class TestServerKnobValidation:
    def test_negative_downtime_rejected(self):
        with pytest.raises(ValueError, match="server_downtime_days"):
            FaultConfig(server_downtime_days=-1)

    def test_zero_downtime_is_valid(self):
        # 0 means "the crashed server never comes back", not "instant
        # recovery" — a legal, documented configuration.
        FaultConfig(server_crash_day=2, server_downtime_days=0)

    def test_negative_crash_id_rejected(self):
        with pytest.raises(ValueError, match="server_crash_id"):
            FaultConfig(server_crash_id=-1)
