"""RetryPolicy backoff schedule."""

import pytest

from repro.faults import RetryPolicy


class TestSchedule:
    def test_exponential_growth(self):
        policy = RetryPolicy(max_retries=4, base_delay=1.0, multiplier=2.0)
        assert policy.delays() == [1.0, 2.0, 4.0, 8.0]

    def test_cap(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=1.0, multiplier=3.0, max_delay=10.0
        )
        assert policy.delays() == [1.0, 3.0, 9.0, 10.0, 10.0, 10.0]

    def test_constant_backoff_with_unit_multiplier(self):
        policy = RetryPolicy(max_retries=3, base_delay=2.0, multiplier=1.0)
        assert policy.delays() == [2.0, 2.0, 2.0]

    def test_zero_retries_allowed(self):
        assert RetryPolicy(max_retries=0).delays() == []


class TestValidation:
    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_shrinking_backoff_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestBudgetExhaustionMidDay:
    def test_retries_stop_exactly_at_the_browse_budget(self):
        """With every browse lost and retries enabled, the day ends when
        the browse budget runs out — even mid-retry-loop — and the
        attempt count equals the budget exactly (never overdrawn)."""
        import dataclasses

        from repro.edonkey.crawler import Crawler, CrawlerConfig
        from repro.edonkey.network import NetworkConfig, build_network
        from repro.faults import FaultConfig
        from repro.trace.model import Trace
        from repro.workload.config import WorkloadConfig

        workload = dataclasses.replace(
            WorkloadConfig().small(),
            num_clients=30,
            num_files=400,
            days=2,
            mainstream_pool_size=30,
        )
        network = build_network(
            NetworkConfig(
                workload=workload, faults=FaultConfig(loss_rate=1.0)
            ),
            seed=8,
        )
        budget = 7  # far fewer attempts than clients * (1 + retries)
        crawler = Crawler(
            network,
            CrawlerConfig(
                days=1,
                browse_budget_start=budget,
                browse_budget_end=budget,
                retry=RetryPolicy(max_retries=5),
            ),
            seed=8,
        )
        # The total loss also blinds the discovery sweep, so hand the
        # crawler a reachable set and drive one browsing day directly.
        crawler.reachable_users = set(network.clients) - network.offline
        assert len(crawler.reachable_users) > budget // 6
        successes = crawler.browse_all(Trace(), day=0, budget=budget)
        assert successes == 0
        assert crawler.stats.browse_attempts == budget
        assert crawler.stats.browse_succeeded == 0
        # The budget ran dry mid-retry-loop: fewer retries were spent
        # than the policy would have allowed for the clients attempted.
        assert crawler.stats.browse_retries < budget
        assert crawler.stats.browse_retries > 0
