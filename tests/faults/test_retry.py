"""RetryPolicy backoff schedule."""

import pytest

from repro.faults import RetryPolicy


class TestSchedule:
    def test_exponential_growth(self):
        policy = RetryPolicy(max_retries=4, base_delay=1.0, multiplier=2.0)
        assert policy.delays() == [1.0, 2.0, 4.0, 8.0]

    def test_cap(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=1.0, multiplier=3.0, max_delay=10.0
        )
        assert policy.delays() == [1.0, 3.0, 9.0, 10.0, 10.0, 10.0]

    def test_constant_backoff_with_unit_multiplier(self):
        policy = RetryPolicy(max_retries=3, base_delay=2.0, multiplier=1.0)
        assert policy.delays() == [2.0, 2.0, 2.0]

    def test_zero_retries_allowed(self):
        assert RetryPolicy(max_retries=0).delays() == []


class TestValidation:
    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_shrinking_backoff_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
