"""FaultInjector: fate draws, day schedules, determinism."""

from dataclasses import dataclass, field
from typing import List

from repro.faults import (
    FATE_DROP,
    FATE_MALFORMED,
    FATE_OK,
    FATE_TIMEOUT,
    FaultConfig,
    FaultInjector,
)
from repro.util.rng import RngStream


def make(config: FaultConfig, seed: int = 1) -> FaultInjector:
    return FaultInjector(config, RngStream(seed, "test-faults"))


@dataclass
class FakeReply:
    files: List[str] = field(default_factory=lambda: ["a", "b"])


@dataclass
class BareReply:
    accepted: bool = True  # no list payload at all


class TestMessageFate:
    def test_disabled_config_is_all_ok(self):
        injector = make(FaultConfig())
        fates = [injector.message_fate(object()) for _ in range(200)]
        assert set(fates) == {FATE_OK}
        assert injector.stats.faults_injected == 0
        assert injector.stats.messages_total == 200

    def test_certain_loss_drops_everything(self):
        injector = make(FaultConfig(loss_rate=1.0))
        assert injector.message_fate(object()) == FATE_DROP
        assert injector.stats.messages_dropped == 1

    def test_loss_precedes_slowness_precedes_garbling(self):
        injector = make(
            FaultConfig(loss_rate=1.0, slow_rate=1.0, malformed_rate=1.0)
        )
        assert injector.message_fate(object()) == FATE_DROP
        injector = make(FaultConfig(slow_rate=1.0, malformed_rate=1.0))
        assert injector.message_fate(object()) == FATE_TIMEOUT
        injector = make(FaultConfig(malformed_rate=1.0))
        assert injector.message_fate(object()) == FATE_MALFORMED

    def test_rates_roughly_respected(self):
        injector = make(FaultConfig(loss_rate=0.2))
        fates = [injector.message_fate(object()) for _ in range(2000)]
        dropped = fates.count(FATE_DROP)
        assert 300 < dropped < 500  # ~400 expected

    def test_same_seed_same_fates(self):
        config = FaultConfig(loss_rate=0.3, slow_rate=0.2, malformed_rate=0.1)
        first = make(config, seed=7)
        second = make(config, seed=7)
        fates_a = [first.message_fate(object()) for _ in range(500)]
        fates_b = [second.message_fate(object()) for _ in range(500)]
        assert fates_a == fates_b
        assert first.stats == second.stats


class TestDegradeReply:
    def test_list_payload_emptied_copy(self):
        injector = make(FaultConfig())
        reply = FakeReply()
        degraded = injector.degrade_reply(reply)
        assert degraded.files == []
        assert reply.files == ["a", "b"]  # original untouched

    def test_payload_free_reply_lost_entirely(self):
        injector = make(FaultConfig())
        assert injector.degrade_reply(BareReply()) is None

    def test_none_passes_through(self):
        assert make(FaultConfig()).degrade_reply(None) is None


class TestDaySchedule:
    def test_no_downtime_means_empty_set(self):
        injector = make(FaultConfig())
        injector.advance_day(0, range(100))
        assert injector.flaky_offline == set()

    def test_downtime_draws_a_daily_subset(self):
        injector = make(FaultConfig(peer_downtime=0.3))
        injector.advance_day(0, range(200))
        day0 = set(injector.flaky_offline)
        injector.advance_day(1, range(200))
        day1 = set(injector.flaky_offline)
        assert 20 < len(day0) < 100
        assert day0 != day1  # redrawn each day

    def test_day_schedule_independent_of_message_traffic(self):
        config = FaultConfig(loss_rate=0.5, peer_downtime=0.3)
        quiet = make(config, seed=9)
        busy = make(config, seed=9)
        for _ in range(321):  # consume loss stream on one injector only
            busy.message_fate(object())
        quiet.advance_day(4, range(150))
        busy.advance_day(4, range(150))
        assert quiet.flaky_offline == busy.flaky_offline

    def test_day_schedule_independent_of_iteration_order(self):
        injector = make(FaultConfig(peer_downtime=0.3), seed=3)
        other = make(FaultConfig(peer_downtime=0.3), seed=3)
        injector.advance_day(2, [5, 1, 9, 3])
        other.advance_day(2, [9, 3, 5, 1])
        assert injector.flaky_offline == other.flaky_offline


class TestServerEvents:
    def test_crash_and_recovery_days(self):
        injector = make(
            FaultConfig(
                server_crash_day=3, server_crash_id=1, server_downtime_days=2
            )
        )
        assert injector.server_events(2) == ([], [])
        assert injector.server_events(3) == ([1], [])
        assert injector.server_events(4) == ([], [])
        assert injector.server_events(5) == ([], [1])

    def test_zero_downtime_never_recovers(self):
        injector = make(
            FaultConfig(server_crash_day=1, server_downtime_days=0)
        )
        assert injector.server_events(1) == ([0], [])
        for day in range(2, 10):
            assert injector.server_events(day) == ([], [])

    def test_no_schedule_without_crash_day(self):
        injector = make(FaultConfig())
        for day in range(5):
            assert injector.server_events(day) == ([], [])


class TestEdgeCases:
    def test_server_crash_on_day_zero(self):
        """Day 0 is the network build day — crashing then must still
        fire a crash event and later the recovery."""
        injector = make(
            FaultConfig(server_crash_day=0, server_downtime_days=2)
        )
        assert injector.server_events(0) == ([0], [])
        assert injector.server_events(1) == ([], [])
        assert injector.server_events(2) == ([], [0])

    def test_day_zero_crash_through_the_network(self):
        import dataclasses

        from repro.edonkey.network import NetworkConfig, build_network
        from repro.workload.config import WorkloadConfig

        workload = dataclasses.replace(
            WorkloadConfig().small(),
            num_clients=30,
            num_files=400,
            days=3,
            mainstream_pool_size=30,
        )
        network = build_network(
            NetworkConfig(
                workload=workload,
                num_servers=2,
                faults=FaultConfig(server_crash_day=0, server_downtime_days=0),
            ),
            seed=2,
        )
        network.advance_day()  # enters day 0: the crash fires
        assert network.down_servers == {0}
        for _ in range(2):
            network.advance_day()
        # downtime 0: the server never recovers, and the network still
        # satisfies its structural invariants throughout.
        assert network.down_servers == {0}
        assert network.check_invariants() == []

    def test_downtime_interacts_with_session_churn(self):
        """A peer can be flaky-offline and session-offline at once; the
        daily redraw never resurrects a churned-out session, and dropping
        downtime to zero mid-run clears the flaky set."""
        from repro.faults import FaultSchedule, FaultWindow

        schedule = FaultSchedule(
            windows=(
                FaultWindow(start=0, end=2, overrides={"peer_downtime": 0.5}),
            )
        )
        injector = FaultInjector(
            FaultConfig(), RngStream(4, "test-faults"), schedule=schedule
        )
        injector.advance_day(0, range(100))
        assert injector.flaky_offline
        injector.advance_day(1, range(50))  # churn shrank the population
        assert injector.flaky_offline <= set(range(50))
        injector.advance_day(2, range(50))  # window closed
        assert injector.flaky_offline == set()
