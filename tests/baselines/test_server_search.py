"""Tests for the central-server lookup baseline."""

from repro.baselines.server_search import ServerLookup
from tests.conftest import build_static


class TestServerLookup:
    def test_publish_and_lookup(self):
        lookup = ServerLookup()
        lookup.publish(1, "f")
        lookup.publish(2, "f")
        assert lookup.lookup("f") == [1, 2]

    def test_lookup_excludes_requester(self):
        lookup = ServerLookup()
        lookup.publish(1, "f")
        assert lookup.lookup("f", exclude=1) == []

    def test_unpublish(self):
        lookup = ServerLookup()
        lookup.publish(1, "f")
        lookup.unpublish(1, "f")
        assert lookup.lookup("f") == []
        assert lookup.index_size() == 0

    def test_unpublish_unknown_noop(self):
        lookup = ServerLookup()
        lookup.unpublish(9, "zz")

    def test_stats(self):
        lookup = ServerLookup()
        lookup.publish(1, "f")
        lookup.lookup("f")
        lookup.lookup("missing")
        assert lookup.stats.queries == 2
        assert lookup.stats.hits == 1
        assert lookup.stats.hit_rate == 0.5

    def test_from_trace(self):
        trace = build_static({0: ["a", "b"], 1: ["a"], 2: []})
        lookup = ServerLookup.from_trace(trace)
        assert lookup.lookup("a") == [0, 1]
        assert lookup.index_size() == 3

    def test_every_shared_file_findable(self, small_static_trace):
        lookup = ServerLookup.from_trace(small_static_trace)
        for fid in sorted(small_static_trace.distinct_files())[:200]:
            assert lookup.lookup(fid), fid
