"""Tests for the flooding baseline."""

import pytest

from repro.baselines.flooding import (
    FloodingConfig,
    FloodingSearch,
    build_overlay,
    expected_contacts,
    measure_flooding,
)
from repro.util.rng import RngStream
from tests.conftest import build_static


class TestBuildOverlay:
    def test_connected_cycle_backbone(self):
        peers = list(range(30))
        overlay = build_overlay(peers, degree=4, rng=RngStream(0))
        # BFS from peer 0 reaches everybody (the cycle guarantees it).
        seen = {peers[0]}
        frontier = [peers[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in overlay[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        assert seen == set(peers)

    def test_average_degree_near_target(self):
        peers = list(range(100))
        overlay = build_overlay(peers, degree=6, rng=RngStream(1))
        mean_degree = sum(len(n) for n in overlay.values()) / len(peers)
        assert mean_degree == pytest.approx(6, abs=1.0)

    def test_no_self_loops_or_duplicates(self):
        overlay = build_overlay(list(range(40)), degree=5, rng=RngStream(2))
        for peer, neighbours in overlay.items():
            assert peer not in neighbours
            assert len(neighbours) == len(set(neighbours))

    def test_symmetry(self):
        overlay = build_overlay(list(range(20)), degree=4, rng=RngStream(3))
        for peer, neighbours in overlay.items():
            for neighbour in neighbours:
                assert peer in overlay[neighbour]

    def test_tiny_populations(self):
        assert build_overlay([], 4, RngStream(0)) == {}
        assert build_overlay([1], 4, RngStream(0)) == {1: []}


class TestFloodingSearch:
    def trace(self):
        caches = {i: [] for i in range(20)}
        caches[7] = ["target"]
        return build_static(caches)

    def test_finds_with_enough_ttl(self):
        search = FloodingSearch(self.trace(), FloodingConfig(degree=4, ttl=10))
        result = search.search(0, "target")
        assert result.hit
        assert result.hops_to_hit is not None
        assert result.contacted >= result.hops_to_hit

    def test_ttl_zero_like_behaviour(self):
        search = FloodingSearch(self.trace(), FloodingConfig(degree=4, ttl=1))
        result = search.search(0, "target")
        # With TTL 1 only direct neighbours are contacted.
        assert result.contacted <= len(search.overlay[0])

    def test_contacts_until_hit_stops_early(self):
        trace = build_static({i: ["everywhere"] for i in range(30)})
        search = FloodingSearch(trace, FloodingConfig(degree=4, ttl=10))
        ok, contacts = search.contacts_until_hit(0, "everywhere")
        assert ok
        assert contacts == 1

    def test_missing_file_not_found(self):
        search = FloodingSearch(self.trace(), FloodingConfig(degree=4, ttl=10))
        ok, contacts = search.contacts_until_hit(0, "nowhere")
        assert not ok
        assert contacts == 19  # everyone contacted


class TestExpectedContacts:
    def test_papers_estimate(self):
        """0.7% spread -> ~143 contacts (Section 3)."""
        assert expected_contacts(0.007) == pytest.approx(142.9, abs=0.1)

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            expected_contacts(0.0)
        with pytest.raises(ValueError):
            expected_contacts(1.5)


class TestMeasureFlooding:
    def test_monte_carlo(self, small_static_trace):
        stats = measure_flooding(small_static_trace, num_queries=50, seed=0)
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert stats["mean_contacts"] > 0

    def test_rarer_files_cost_more(self):
        # A file on half the peers vs a file on one peer.
        caches = {i: ["common"] if i % 2 == 0 else [] for i in range(60)}
        caches[1] = ["rare"]
        trace = build_static(caches)
        search = FloodingSearch(trace, FloodingConfig(degree=4, ttl=30), seed=1)
        common_costs = []
        rare_costs = []
        for start in range(10, 30):
            ok_c, cost_c = search.contacts_until_hit(start, "common")
            ok_r, cost_r = search.contacts_until_hit(start, "rare")
            assert ok_c and ok_r
            common_costs.append(cost_c)
            rare_costs.append(cost_r)
        assert sum(rare_costs) > sum(common_costs)

    def test_no_sharers_raises(self):
        trace = build_static({0: [], 1: []})
        with pytest.raises(ValueError):
            measure_flooding(trace, num_queries=5)
