"""Tests for the random-walk baseline."""

import pytest

from repro.baselines.random_walk import (
    RandomWalkConfig,
    RandomWalkSearch,
    measure_random_walk,
)
from tests.conftest import build_static


class TestRandomWalkSearch:
    def test_finds_ubiquitous_file_fast(self):
        trace = build_static({i: ["everywhere"] for i in range(30)})
        search = RandomWalkSearch(trace, RandomWalkConfig(steps=32), seed=0)
        result = search.search(0, "everywhere")
        assert result.hit
        assert result.contacted <= 2

    def test_misses_absent_file(self):
        trace = build_static({i: ["x"] for i in range(10)})
        search = RandomWalkSearch(trace, RandomWalkConfig(walkers=2, steps=8), seed=0)
        result = search.search(0, "not-there")
        assert not result.hit
        assert result.contacted <= 2 * 8

    def test_contact_budget_respected(self):
        trace = build_static({i: [] for i in range(20)})
        config = RandomWalkConfig(walkers=3, steps=10)
        search = RandomWalkSearch(trace, config, seed=1)
        result = search.search(0, "anything")
        assert result.contacted <= config.walkers * config.steps

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(walkers=0)
        with pytest.raises(ValueError):
            RandomWalkConfig(steps=0)


class TestMeasure:
    def test_monte_carlo(self, small_static_trace):
        stats = measure_random_walk(small_static_trace, num_queries=50, seed=0)
        assert 0.0 <= stats["hit_rate"] <= 1.0
        assert stats["mean_contacts"] > 0

    def test_empty_trace_raises(self):
        trace = build_static({0: [], 1: []})
        with pytest.raises(ValueError):
            measure_random_walk(trace, num_queries=5)

    def test_more_walkers_help(self):
        caches = {i: ["needle"] if i < 3 else [] for i in range(60)}
        trace = build_static(caches)
        few = measure_random_walk(
            trace, num_queries=150, config=RandomWalkConfig(walkers=1, steps=16), seed=2
        )
        many = measure_random_walk(
            trace, num_queries=150, config=RandomWalkConfig(walkers=8, steps=16), seed=2
        )
        assert many["hit_rate"] >= few["hit_rate"]
