"""Tests for the declarative experiment registry."""

import pytest

from repro.runtime import registry
from repro.runtime.registry import (
    ExperimentSpec,
    UnknownExperimentError,
    experiment,
)


def _dummy_spec(name, runner=None, **kwargs):
    if runner is None:
        def runner(ctx=None):  # pragma: no cover - never executed
            return None
        runner.__name__ = f"run_{name.replace('-', '_')}"
    return ExperimentSpec(
        name=name,
        runner=runner,
        artefact=kwargs.pop("artefact", "Test"),
        description=kwargs.pop("description", "test spec"),
        **kwargs,
    )


@pytest.fixture
def scratch_registry(monkeypatch):
    """An empty registry for registration-behaviour tests."""
    monkeypatch.setattr(registry, "_REGISTRY", {})
    monkeypatch.setattr(registry, "_ALIASES", {})
    return registry


class TestRegistration:
    def test_decorator_registers_and_returns_the_runner(self, scratch_registry):
        @experiment("t1", artefact="Test", description="d")
        def run_t1(ctx=None):
            return "ran"

        spec = registry.get("t1")
        assert spec.runner is run_t1
        assert spec.artefact == "Test"
        assert run_t1() == "ran"  # the function itself is unwrapped

    def test_duplicate_name_rejected(self, scratch_registry):
        registry.register(_dummy_spec("dup"))
        with pytest.raises(ValueError, match="registered twice"):
            registry.register(_dummy_spec("dup"))

    def test_duplicate_alias_rejected(self, scratch_registry):
        registry.register(_dummy_spec("a", aliases=("shared",)))
        with pytest.raises(ValueError, match="registered twice"):
            registry.register(_dummy_spec("b", aliases=("shared",)))

    def test_same_runner_twice_rejected(self, scratch_registry):
        spec = _dummy_spec("one")
        registry.register(spec)
        with pytest.raises(ValueError, match="registered twice"):
            registry.register(_dummy_spec("two", runner=spec.runner))

    def test_alias_resolves_to_primary(self, scratch_registry):
        registry.register(_dummy_spec("fig9", aliases=("fig10",)))
        assert registry.get("fig10") is registry.get("fig9")

    def test_unknown_name_lists_valid_choices(self, scratch_registry):
        registry.register(_dummy_spec("only"))
        with pytest.raises(UnknownExperimentError) as excinfo:
            registry.get("nope")
        message = str(excinfo.value)
        assert "nope" in message
        assert "only" in message

    def test_natural_name_order(self, scratch_registry):
        for name in ("fig10", "fig2", "fig1", "table1"):
            registry.register(_dummy_spec(name))
        assert [s.name for s in registry.all_experiments()] == [
            "fig1", "fig2", "fig10", "table1",
        ]


class TestCompleteness:
    """The real registry covers every public run_* exactly once."""

    def test_every_runner_registered_exactly_once(self):
        import repro.experiments as experiments

        specs = registry.load_all()
        registered = [spec.runner_name for spec in specs]
        assert len(registered) == len(set(registered))

        public_runners = {
            name for name in dir(experiments) if name.startswith("run_")
        }
        assert public_runners == set(registered)

    def test_aliases_do_not_collide_with_names(self):
        registry.load_all()
        specs = registry.all_experiments()
        primaries = {s.name for s in specs}
        aliases = [a for s in specs for a in s.aliases]
        assert len(aliases) == len(set(aliases))
        assert not primaries & set(aliases)

    def test_figure_aliases_present(self):
        registry.load_all()
        assert registry.get("fig10").name == "fig9"
        assert registry.get("fig16").name == "fig15"
        assert registry.get("fig17").name == "fig15"


class TestDispatch:
    def test_spec_run_equals_direct_call(self):
        """Registry dispatch is identity: same ctx -> same result."""
        from repro.experiments.search_figures import run_figure18
        from repro.runtime import RunContext, Scale

        registry.load_all()
        ctx = RunContext(seed=11, scale=Scale.SMALL)
        via_registry = registry.get("fig18").run(ctx=ctx)
        direct = run_figure18(ctx=ctx)
        assert via_registry.render() == direct.render()
        assert via_registry.metrics == direct.metrics

    def test_default_scale_used_when_no_ctx(self, scratch_registry):
        from repro.runtime import Scale

        seen = {}

        def run_probe(ctx=None):
            seen["scale"] = ctx.scale
            return None

        registry.register(
            _dummy_spec("probe", runner=run_probe, default_scale=Scale.SMALL)
        )
        registry.get("probe").run()
        assert seen["scale"] is Scale.SMALL
