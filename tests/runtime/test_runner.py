"""Tests for the manifest-driven runner and the manifest schema."""

import json

import pytest

from repro.runtime import (
    MANIFEST_SCHEMA,
    RunContext,
    RunManifest,
    Runner,
    Scale,
    UnknownExperimentError,
    validate_manifest,
)


def _manifest(**overrides):
    payload = dict(
        experiment="fig18",
        artefact="Figure 18",
        config_hash="abc123",
        seed=3,
        scale="tiny",
        wall_time_s=0.5,
        metrics={"hit": 0.41},
        run_metrics={},
    )
    payload.update(overrides)
    return RunManifest(**payload)


class TestManifestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        manifest = _manifest()
        path = tmp_path / "m.json"
        manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded == manifest
        assert loaded.schema == MANIFEST_SCHEMA

    def test_validate_rejects_wrong_schema(self):
        payload = _manifest().to_dict()
        payload["schema"] = "repro.manifest/0"
        assert any("schema" in p for p in validate_manifest(payload))

    def test_validate_rejects_non_numeric_metrics(self):
        payload = _manifest().to_dict()
        payload["metrics"]["hit"] = "high"
        assert any("metrics" in p for p in validate_manifest(payload))

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ValueError, match="invalid manifest"):
            RunManifest.from_dict({"schema": MANIFEST_SCHEMA})


@pytest.fixture
def tiny_runner(tmp_path):
    ctx = RunContext(seed=3, scale=Scale.TINY)
    return Runner(ctx=ctx, results_dir=tmp_path / "results")


class TestWriteMetrics:
    def test_write_metrics_emits_file_and_manifest_field(self, tmp_path):
        from repro.obs import RunMetrics

        ctx = RunContext(seed=3, scale=Scale.TINY)
        runner = Runner(
            ctx=ctx, results_dir=tmp_path / "results", write_metrics=True
        )
        outcome = runner.run("table2")
        assert outcome.ok
        metrics_path = runner.metrics_path("table2")
        assert metrics_path.exists()
        assert outcome.manifest.metrics_file == "table2.metrics.json"
        standalone = RunMetrics.read(str(metrics_path))
        assert standalone.to_dict() == outcome.manifest.run_metrics
        assert validate_manifest(outcome.manifest.to_dict()) == []

    def test_default_runner_writes_no_metrics_file(self, tiny_runner):
        outcome = tiny_runner.run("table2")
        assert outcome.ok
        assert not tiny_runner.metrics_path("table2").exists()
        assert outcome.manifest.metrics_file is None

    def test_manifest_with_metrics_file_round_trips(self, tmp_path):
        manifest = _manifest(metrics_file="fig18.metrics.json")
        path = tmp_path / "m.json"
        manifest.write(path)
        assert RunManifest.read(path) == manifest

    def test_validate_rejects_non_string_metrics_file(self):
        payload = _manifest().to_dict()
        payload["metrics_file"] = 7
        assert any("metrics_file" in p for p in validate_manifest(payload))


class TestRunnerCaching:
    def test_run_writes_manifest_and_csv(self, tiny_runner):
        outcome = tiny_runner.run("table2")
        assert outcome.ok and not outcome.skipped
        path = tiny_runner.manifest_path("table2")
        assert path.exists()
        manifest = RunManifest.read(path)
        assert manifest.experiment == "table2"
        assert manifest.scale == "tiny"
        assert manifest.seed == 3
        assert validate_manifest(manifest.to_dict()) == []
        assert manifest.run_metrics  # observability blob embedded
        assert tiny_runner.csv_path("table2").exists()

    def test_second_run_skips_on_hash_match(self, tiny_runner):
        first = tiny_runner.run("table2")
        second = tiny_runner.run("table2")
        assert not first.skipped
        assert second.skipped
        assert second.manifest.config_hash == first.manifest.config_hash

    def test_force_reruns(self, tiny_runner):
        tiny_runner.run("table2")
        again = tiny_runner.run("table2", force=True)
        assert not again.skipped

    def test_seed_change_invalidates(self, tiny_runner, tmp_path):
        tiny_runner.run("table2")
        other = Runner(
            ctx=RunContext(seed=4, scale=Scale.TINY),
            results_dir=tiny_runner.results_dir,
        )
        outcome = other.run("table2")
        assert not outcome.skipped

    def test_override_change_invalidates(self, tiny_runner):
        tiny_runner.run("fig18", list_sizes=(5, 20))
        assert tiny_runner.run("fig18", list_sizes=(5, 20)).skipped
        assert not tiny_runner.run("fig18", list_sizes=(5, 10, 20)).skipped

    def test_corrupt_manifest_reruns(self, tiny_runner):
        tiny_runner.run("table2")
        tiny_runner.manifest_path("table2").write_text("{not json")
        assert not tiny_runner.run("table2").skipped

    def test_unknown_name_raises(self, tiny_runner):
        with pytest.raises(UnknownExperimentError):
            tiny_runner.run("nope")


class TestRunAll:
    def test_subset_runs_and_isolates_failures(self, tiny_runner, monkeypatch):
        from repro.runtime import registry

        def boom(ctx=None):
            raise RuntimeError("kaboom")

        spec = registry.get("table2")
        monkeypatch.setattr(
            registry,
            "_REGISTRY",
            {
                **registry._REGISTRY,
                "table2": type(spec)(
                    name="table2",
                    runner=boom,
                    artefact=spec.artefact,
                    description=spec.description,
                ),
            },
        )
        outcomes = tiny_runner.run_all(["table2", "fig18"])
        by_name = {o.name: o for o in outcomes}
        assert not by_name["table2"].ok
        assert "kaboom" in by_name["table2"].error
        assert by_name["fig18"].ok  # the batch continued

    def test_unknown_name_propagates(self, tiny_runner):
        with pytest.raises(UnknownExperimentError):
            tiny_runner.run_all(["nope"])

    def test_manifest_files_are_valid_json(self, tiny_runner):
        tiny_runner.run_all(["table2"])
        payload = json.loads(
            tiny_runner.manifest_path("table2").read_text()
        )
        assert validate_manifest(payload) == []


class TestLineage:
    def test_lineage_round_trips_through_json(self, tmp_path):
        lineage = {"harness": "chaos", "kill_days": [[0, 2]], "passed": True}
        manifest = _manifest(lineage=lineage)
        path = tmp_path / "m.json"
        manifest.write(path)
        loaded = RunManifest.read(path)
        assert loaded.lineage == lineage
        assert loaded == manifest

    def test_lineage_absent_by_default(self):
        payload = _manifest().to_dict()
        assert "lineage" not in payload
        assert RunManifest.from_dict(payload).lineage is None

    def test_validate_rejects_non_object_lineage(self):
        payload = _manifest().to_dict()
        payload["lineage"] = "not an object"
        assert any("lineage" in p for p in validate_manifest(payload))

    def test_runner_records_result_lineage(self, tmp_path, monkeypatch):
        from repro.experiments.result import ExperimentResult
        from repro.runtime import registry
        from repro.runtime.registry import experiment

        monkeypatch.setattr(registry, "_REGISTRY", {})
        monkeypatch.setattr(registry, "_ALIASES", {})

        @experiment("probe", artefact="t", description="d")
        def run_probe(ctx=None, **kwargs):
            return ExperimentResult(
                experiment_id="probe",
                title="t",
                metrics={"x": 1.0},
                lineage={"harness": "chaos", "passed": True},
            )

        runner = Runner(
            ctx=RunContext(seed=3, scale=Scale.TINY),
            results_dir=tmp_path / "results",
        )
        outcome = runner.run("probe")
        assert outcome.ok
        assert outcome.manifest.lineage == {"harness": "chaos", "passed": True}
        reread = RunManifest.read(runner.manifest_path("probe"))
        assert reread.lineage == {"harness": "chaos", "passed": True}
