"""Determinism regression: the runtime layer must not move a single byte.

The refactor contract for the runtime layer is that routing seed, scale
and observer through a :class:`RunContext` is *plumbing only*: a seeded
crawl, a seeded search run and a seeded experiment must produce output
byte-identical to the legacy keyword-argument path.
"""

import dataclasses

from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.runtime import RunContext, Scale, workload_config
from repro.trace.io import dumps_trace


def _crawl_workload():
    return dataclasses.replace(
        workload_config(Scale.TINY),
        num_clients=40,
        num_files=400,
        days=2,
        mainstream_pool_size=40,
    )


def _trace_bytes(trace) -> bytes:
    return dumps_trace(trace).encode()


class TestSeededByteIdentity:
    def test_crawl_identical_through_context(self):
        config = NetworkConfig(workload=_crawl_workload())
        legacy_net = build_network(config, seed=1)
        legacy = Crawler(legacy_net, CrawlerConfig(days=2), seed=1).crawl()

        ctx = RunContext(seed=1, scale=Scale.TINY)
        ctx_net = ctx.build_network(config)
        via_ctx = ctx.crawler(ctx_net, CrawlerConfig(days=2)).crawl()

        assert _trace_bytes(via_ctx) == _trace_bytes(legacy)

    def test_search_identical_through_context(self):
        ctx = RunContext(seed=3, scale=Scale.TINY)
        trace = ctx.static_trace()

        legacy = simulate_search(trace, SearchConfig(seed=3))
        via_ctx = ctx.simulate_search(trace)

        assert via_ctx.hit_rate == legacy.hit_rate
        assert via_ctx.rates == legacy.rates

    def test_experiment_identical_through_context(self):
        from repro.experiments.search_figures import run_figure18

        legacy = run_figure18(scale=Scale.TINY, seed=42, list_sizes=(5, 20))
        via_ctx = run_figure18(
            ctx=RunContext(seed=42, scale=Scale.TINY), list_sizes=(5, 20)
        )
        assert via_ctx.render().encode() == legacy.render().encode()
        assert via_ctx.metrics == legacy.metrics

    def test_runner_observer_does_not_perturb_results(self, tmp_path):
        """The Runner attaches an enabled Observer; outputs must not move."""
        from repro.runtime import Runner

        direct = Runner(
            ctx=RunContext(seed=42, scale=Scale.TINY),
            results_dir=tmp_path,
        ).run("fig18", list_sizes=(5, 20))
        from repro.experiments.search_figures import run_figure18

        legacy = run_figure18(scale=Scale.TINY, seed=42, list_sizes=(5, 20))
        assert direct.result.render() == legacy.render()
        assert direct.manifest.metrics == legacy.metrics
