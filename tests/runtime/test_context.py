"""Tests for RunContext and the bounded trace cache."""

import pytest

from repro.faults import FaultConfig
from repro.obs import NULL_OBSERVER, Observer
from repro.runtime import (
    DEFAULT_SEED,
    RunContext,
    SHARED_TRACE_CACHE,
    Scale,
    TraceCache,
)


class TestEnsure:
    def test_explicit_context_wins_outright(self):
        ctx = RunContext(seed=5, scale=Scale.SMALL)
        resolved = RunContext.ensure(ctx, seed=99, scale=Scale.LARGE)
        assert resolved is ctx

    def test_loose_parameters_promoted(self):
        obs = Observer()
        resolved = RunContext.ensure(None, seed=7, scale=Scale.TINY, obs=obs)
        assert resolved.seed == 7
        assert resolved.scale is Scale.TINY
        assert resolved.obs is obs

    def test_defaults_without_anything(self):
        resolved = RunContext.ensure(None)
        assert resolved.seed == DEFAULT_SEED
        assert resolved.scale is Scale.DEFAULT
        assert resolved.obs is NULL_OBSERVER
        assert not resolved.faults.enabled

    def test_derive_changes_one_field(self):
        ctx = RunContext(seed=5)
        derived = ctx.derive(scale=Scale.SMALL)
        assert derived.seed == 5
        assert derived.scale is Scale.SMALL
        assert ctx.scale is Scale.DEFAULT  # original untouched

    def test_rng_streams_are_deterministic_and_labelled(self):
        ctx = RunContext(seed=5)
        assert ctx.rng("a").py.random() == ctx.rng("a").py.random()
        assert ctx.rng("a").py.random() != ctx.rng("b").py.random()


class TestContextTraces:
    def test_traces_default_to_the_shared_cache(self):
        assert RunContext().traces is SHARED_TRACE_CACHE

    def test_private_cache_is_isolated(self):
        private = TraceCache(maxsize=4)
        ctx = RunContext(seed=3, scale=Scale.SMALL, traces=private)
        trace = ctx.static_trace()
        assert ("static", Scale.SMALL, 3) in private
        assert trace is ctx.static_trace()  # second call hits

    def test_trace_matches_shared_cache(self):
        ctx = RunContext(seed=3, scale=Scale.SMALL)
        assert ctx.static_trace() is SHARED_TRACE_CACHE.static(Scale.SMALL, 3)

    def test_compiled_trace_is_cached(self):
        private = TraceCache(maxsize=4)
        ctx = RunContext(seed=3, scale=Scale.SMALL, traces=private)
        compiled = ctx.compiled_trace()
        assert ("compiled", Scale.SMALL, 3) in private
        assert compiled is ctx.compiled_trace()  # hit skips recompilation
        assert compiled is ctx.static_trace().compiled()  # shared object


class TestTraceCache:
    def test_bounded_lru_eviction(self):
        cache = TraceCache(maxsize=2)
        builds = []

        def build(tag):
            builds.append(tag)
            return tag

        cache._get("k", Scale.TINY, 1, lambda: build(1))
        cache._get("k", Scale.TINY, 2, lambda: build(2))
        cache._get("k", Scale.TINY, 1, lambda: build("hit"))  # refresh 1
        cache._get("k", Scale.TINY, 3, lambda: build(3))  # evicts 2
        assert ("k", Scale.TINY, 1) in cache
        assert ("k", Scale.TINY, 2) not in cache
        assert ("k", Scale.TINY, 3) in cache
        assert builds == [1, 2, 3]
        assert cache.hits == 1
        assert cache.misses == 3

    def test_clear_empties_but_keeps_counters(self):
        cache = TraceCache(maxsize=2)
        cache._get("k", Scale.TINY, 1, lambda: "x")
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError, match="maxsize"):
            TraceCache(maxsize=0)

    def test_variants_share_one_bound(self):
        cache = TraceCache(maxsize=2)
        cache.static(Scale.SMALL, 3)
        cache.temporal(Scale.TINY, 1)
        cache.filtered(Scale.TINY, 1)  # builds from temporal, evicts static
        assert ("static", Scale.SMALL, 3) not in cache
        assert len(cache) == 2


class TestComponentFactories:
    def test_build_network_uses_context_seed_and_faults(self):
        import dataclasses

        from repro.runtime.scale import workload_config

        workload = dataclasses.replace(
            workload_config(Scale.TINY),
            num_clients=20,
            num_files=200,
            days=2,
            mainstream_pool_size=40,
        )
        from repro.edonkey.network import NetworkConfig

        faults = FaultConfig(loss_rate=0.5)
        ctx = RunContext(seed=9, scale=Scale.TINY, faults=faults)
        network = ctx.build_network(NetworkConfig(workload=workload))
        assert network.faults.enabled  # ambient fault config applied

    def test_explicit_network_faults_override_context(self):
        import dataclasses

        from repro.edonkey.network import NetworkConfig
        from repro.runtime.scale import workload_config

        workload = dataclasses.replace(
            workload_config(Scale.TINY),
            num_clients=20,
            num_files=200,
            days=2,
            mainstream_pool_size=40,
        )
        explicit = FaultConfig(loss_rate=0.25)
        ctx = RunContext(seed=9, faults=FaultConfig(loss_rate=0.9))
        network = ctx.build_network(
            NetworkConfig(workload=workload, faults=explicit)
        )
        assert network.config.faults.loss_rate == 0.25

    def test_simulate_search_inherits_seed(self):
        ctx = RunContext(seed=3, scale=Scale.SMALL)
        via_ctx = ctx.simulate_search(ctx.static_trace())
        from repro.core.search import SearchConfig, simulate_search

        direct = simulate_search(ctx.static_trace(), SearchConfig(seed=3))
        assert via_ctx.hit_rate == direct.hit_rate
