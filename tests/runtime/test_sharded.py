"""Worker-count invariance of the sharded runner (PR 8, runtime layer).

The contract under test is the strongest one a parallel engine can make:
for a seeded run, ``--workers N`` is *unobservable* in every artefact —
trace bytes, store segments, stdout, metrics counters/gauges/histogram
shapes — for any N, because shard substreams derive from the run seed
(never the worker count) and the coordinator merges in a deterministic
order.  Wall-clock spans and latency histograms are the only sanctioned
differences.

Also covered: the shared-memory segments backing the fan-out must all be
unlinked once the pool exits (satellite 3's leak check), and the CLI
must refuse worker pools for configurations that are inherently
sequential (checkpointing crawls, retry budgets, fault schedules,
sequential-only experiments) with exit code 2.
"""

import filecmp
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.trace.shm import SEGMENT_PREFIX

REPO_ROOT = Path(__file__).resolve().parents[2]
SHM_DIR = Path("/dev/shm")


def _our_segments():
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
        return set()
    return {p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*")}


def _cli(*argv, check=True):
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": "src"},
    )
    if check and result.returncode != 0:
        raise AssertionError(
            f"CLI {' '.join(argv)} failed rc={result.returncode}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    return result


def _assert_metrics_equivalent(baseline_path, candidate_path):
    """Counters, gauges and histogram shapes must match exactly; only
    wall-clock artefacts (spans, latency histograms) may differ."""
    baseline = json.loads(Path(baseline_path).read_text())
    candidate = json.loads(Path(candidate_path).read_text())
    assert candidate["counters"] == baseline["counters"]
    assert candidate["gauges"] == baseline["gauges"]
    assert set(candidate["histograms"]) == set(baseline["histograms"])
    for name, base_hist in baseline["histograms"].items():
        cand_hist = candidate["histograms"][name]
        if "latency" in name:
            # Bucketing of wall-clock samples is machine-dependent;
            # the sample *count* is not.
            assert cand_hist["count"] == base_hist["count"], name
        else:
            assert cand_hist == base_hist, name


class TestSearchInvariance:
    def test_worker_count_unobservable(self, tmp_path):
        """One seeded SMALL search, workers 1/2/4: identical stdout and
        metrics, and no shared-memory segment survives the pool."""
        before = _our_segments()
        outputs = {}
        for workers in (1, 2, 4):
            metrics = tmp_path / f"metrics-{workers}.json"
            result = _cli(
                "search", "--seed", "7", "--scale", "small",
                "--list-sizes", "5", "10",
                "--workers", str(workers),
                "--metrics-out", str(metrics),
            )
            # The metrics path is the one worker-dependent line.
            outputs[workers] = "\n".join(
                line
                for line in result.stdout.splitlines()
                if str(metrics) not in line
            )
        assert outputs[2] == outputs[1]
        assert outputs[4] == outputs[1]
        _assert_metrics_equivalent(
            tmp_path / "metrics-1.json", tmp_path / "metrics-2.json"
        )
        _assert_metrics_equivalent(
            tmp_path / "metrics-1.json", tmp_path / "metrics-4.json"
        )
        assert _our_segments() == before, "leaked /dev/shm segments"


class TestCrawlInvariance:
    def test_trace_bytes_and_metrics_identical(self, tmp_path):
        """One seeded crawl, workers 1/2/4: byte-identical trace files
        and exactly equal counters/gauges."""
        traces = {}
        for workers in (1, 2, 4):
            trace = tmp_path / f"trace-{workers}.json"
            metrics = tmp_path / f"metrics-{workers}.json"
            _cli(
                "crawl", "--seed", "7", "--clients", "120", "--days", "4",
                "--workers", str(workers),
                "--output", str(trace), "--metrics-out", str(metrics),
            )
            traces[workers] = trace
        assert filecmp.cmp(traces[1], traces[2], shallow=False)
        assert filecmp.cmp(traces[1], traces[4], shallow=False)
        _assert_metrics_equivalent(
            tmp_path / "metrics-1.json", tmp_path / "metrics-2.json"
        )
        _assert_metrics_equivalent(
            tmp_path / "metrics-1.json", tmp_path / "metrics-4.json"
        )

    def test_streamed_store_identical(self, tmp_path):
        """Sharded + streamed crawls land the same store segments as a
        sequential in-memory crawl."""
        stores = {}
        for label, extra in (
            ("seq", []),
            ("stream", ["--stream"]),
            ("sharded", ["--stream", "--workers", "2"]),
        ):
            store = tmp_path / f"store-{label}"
            _cli(
                "crawl", "--seed", "11", "--clients", "80", "--days", "3",
                "--store", str(store), *extra,
            )
            stores[label] = store
        for label in ("stream", "sharded"):
            comparison = filecmp.dircmp(stores["seq"], stores[label])
            assert not comparison.left_only and not comparison.right_only
            mismatch = [
                name
                for name in comparison.common_files
                if not filecmp.cmp(
                    stores["seq"] / name, stores[label] / name, shallow=False
                )
            ]
            assert not mismatch, f"{label}: segments differ: {mismatch}"


class TestShardedTelemetry:
    def test_every_worker_appends_to_the_shared_file(self, tmp_path):
        """A sharded crawl telemeters from the coordinator *and* every
        worker, all into one JSONL, each line tagged with its source."""
        telemetry = tmp_path / "run.jsonl"
        _cli(
            "crawl", "--seed", "7", "--clients", "120", "--days", "3",
            "--workers", "2",
            "--telemetry-out", str(telemetry),
            "--telemetry-interval", "0.05",
        )
        from repro.obs.telemetry import read_telemetry, validate_telemetry

        assert validate_telemetry(str(telemetry)) == []
        records, _truncated = read_telemetry(str(telemetry))
        by_source = {}
        for record in records:
            by_source.setdefault(record["source"], []).append(record)
        assert set(by_source) == {"main", "shard 0", "shard 1"}
        for source, recs in by_source.items():
            kinds = [r["kind"] for r in recs]
            assert kinds[0] == "start", source
            assert kinds[-1] == "end", source
            assert recs[-1]["outcome"] == "completed", source
        # Workers run in separate processes: distinct pids in the file.
        assert len({r["pid"] for r in records}) == 3

    def test_telemetry_leaves_artifacts_identical(self, tmp_path):
        """Telemetry on vs off: byte-identical trace, equal metrics."""
        plain_trace = tmp_path / "plain.json"
        telem_trace = tmp_path / "telem.json"
        plain_metrics = tmp_path / "plain-metrics.json"
        telem_metrics = tmp_path / "telem-metrics.json"
        _cli(
            "crawl", "--seed", "7", "--clients", "120", "--days", "3",
            "--workers", "2", "--output", str(plain_trace),
            "--metrics-out", str(plain_metrics),
        )
        _cli(
            "crawl", "--seed", "7", "--clients", "120", "--days", "3",
            "--workers", "2", "--output", str(telem_trace),
            "--metrics-out", str(telem_metrics),
            "--telemetry-out", str(tmp_path / "t.jsonl"),
        )
        assert filecmp.cmp(plain_trace, telem_trace, shallow=False)
        plain = json.loads(plain_metrics.read_text())
        telem = json.loads(telem_metrics.read_text())
        assert plain["counters"] == telem["counters"]
        # Telemetry adds only its own resource/* gauges; everything the
        # simulation wrote is unchanged.
        deterministic = {
            k: v for k, v in telem["gauges"].items()
            if not k.startswith("resource/")
        }
        assert deterministic == plain["gauges"]

    def test_sharded_trace_out_has_per_worker_lanes(self, tmp_path):
        """--trace-out under --workers merges worker events onto one
        timeline with per-process lanes (ph:M process_name metadata)."""
        trace_path = tmp_path / "trace.json"
        _cli(
            "crawl", "--seed", "7", "--clients", "120", "--days", "3",
            "--workers", "2",
            "--output", str(tmp_path / "out.jsonl.gz"),
            "--trace-out", str(trace_path),
        )
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert {"repro", "shard 0", "shard 1"} <= names
        span_pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert len(span_pids) >= 2, "no worker events on the timeline"


class TestSequentialOnlyGuards:
    @pytest.mark.parametrize(
        "flags",
        [
            ("--retries", "1"),
            ("--checkpoint-dir", "ckpt"),
            ("--loss-rate", "0.1"),
        ],
        ids=["retries", "checkpoint", "faults"],
    )
    def test_crawl_rejects_workers(self, flags, tmp_path):
        flags = tuple(
            str(tmp_path / value) if prev == "--checkpoint-dir" else value
            for prev, value in zip(("",) + flags, flags)
        )
        result = _cli(
            "crawl", "--clients", "40", "--days", "2",
            "--workers", "2", *flags, check=False,
        )
        assert result.returncode == 2
        assert "sharded crawling requires" in result.stderr

    def test_stream_requires_store(self):
        result = _cli(
            "crawl", "--clients", "40", "--days", "2", "--stream",
            check=False,
        )
        assert result.returncode == 2
        assert "--store" in result.stderr

    def test_sequential_only_experiment_named(self):
        result = _cli(
            "experiment", "extrapolation", "--scale", "tiny",
            "--workers", "2", check=False,
        )
        assert result.returncode == 2
        assert "extrapolation" in result.stderr
        assert "sequential-only" in result.stderr

    def test_run_all_names_sequential_only(self, tmp_path):
        result = _cli(
            "run-all", "--scale", "tiny", "--only", "chaos",
            "--workers", "2", "--results-dir", str(tmp_path),
            check=False,
        )
        assert result.returncode == 2
        assert "chaos" in result.stderr
