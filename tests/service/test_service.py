"""Tests for the live index service and the load generator."""

import asyncio

import pytest

from repro.edonkey.messages import (
    Ack,
    BrowseUser,
    ConnectRequest,
    ErrorReply,
    FileDescription,
    Keyword,
    PublishFiles,
    QuerySources,
    SearchReply,
    SearchRequest,
)
from repro.edonkey.transport import TcpTransport
from repro.faults import FaultConfig
from repro.obs import Observer
from repro.service import (
    IndexService,
    LoadGenConfig,
    ServiceConfig,
    build_plan,
    run_loadgen,
)


def run(coro):
    return asyncio.run(coro)


async def _service(**kwargs):
    service = IndexService(ServiceConfig(**kwargs))
    await service.start()
    return service


async def _stop(service):
    service.request_stop()
    await service.serve_until_stopped()


def desc(file_id="f1", name="shared file", size=1000):
    return FileDescription(file_id=file_id, name=name, size=size)


class TestIndexService:
    def test_connect_publish_search(self):
        async def scenario():
            service = await _service()
            t = await TcpTransport.open("127.0.0.1", service.port)
            reply = await t.request(
                ConnectRequest(client_id=1, nickname="n", firewalled=False)
            )
            assert reply.accepted
            ack = await t.request(PublishFiles(client_id=1, files=[desc()]))
            assert isinstance(ack, Ack) and ack.ok
            found = await t.request(
                SearchRequest(client_id=1, query=Keyword("shared"))
            )
            assert isinstance(found, SearchReply)
            assert [d.file_id for d in found.results] == ["f1"]
            await t.aclose()
            await _stop(service)

        run(scenario())

    def test_publish_before_connect_is_error_reply(self):
        async def scenario():
            service = await _service()
            t = await TcpTransport.open("127.0.0.1", service.port)
            reply = await t.request(PublishFiles(client_id=1, files=[]))
            assert isinstance(reply, ErrorReply)
            assert "protocol error" in reply.reason
            await t.aclose()
            await _stop(service)

        run(scenario())

    def test_unroutable_message_is_error_reply(self):
        async def scenario():
            service = await _service()
            t = await TcpTransport.open("127.0.0.1", service.port)
            # SearchReply is a reply type; a client must not send it.
            reply = await t.request(SearchReply(results=[]))
            assert isinstance(reply, ErrorReply)
            assert "unroutable" in reply.reason
            await t.aclose()
            await _stop(service)

        run(scenario())

    def test_garbage_bytes_get_framed_error_then_close(self):
        async def scenario():
            service = await _service()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(b"\x00\x00\x00\x05notjs")
            await writer.drain()
            from repro.edonkey.wire import read_frame

            frame = await read_frame(reader)
            assert frame is not None
            message, _ = frame
            assert isinstance(message, ErrorReply)
            # The service hangs up after the error frame.
            assert await reader.read(64) == b""
            writer.close()
            await _stop(service)

        run(scenario())

    def test_disconnect_on_connection_close(self):
        async def scenario():
            service = await _service()
            t = await TcpTransport.open("127.0.0.1", service.port)
            await t.request(
                ConnectRequest(client_id=9, nickname="n", firewalled=False)
            )
            await t.request(PublishFiles(client_id=9, files=[desc()]))
            assert 9 in service.server._sessions
            await t.aclose()
            # Give the service's connection task a beat to run its
            # disconnect bookkeeping.
            for _ in range(100):
                if 9 not in service.server._sessions:
                    break
                await asyncio.sleep(0.01)
            assert 9 not in service.server._sessions
            # The session's files are unpublished with it.
            t2 = await TcpTransport.open("127.0.0.1", service.port)
            await t2.request(
                ConnectRequest(client_id=10, nickname="m", firewalled=False)
            )
            sources = await t2.request(
                QuerySources(client_id=10, file_id="f1")
            )
            assert sources.sources == []
            await t2.aclose()
            await _stop(service)

        run(scenario())

    def test_browse_user_is_server_mediated(self):
        async def scenario():
            service = await _service()
            t = await TcpTransport.open("127.0.0.1", service.port)
            await t.request(
                ConnectRequest(client_id=1, nickname="a", firewalled=False)
            )
            await t.request(PublishFiles(client_id=1, files=[desc()]))
            browse = await t.request(
                BrowseUser(requester_id=2, target_id=1)
            )
            assert browse.allowed
            assert [d.file_id for d in browse.files] == ["f1"]
            missing = await t.request(
                BrowseUser(requester_id=2, target_id=404)
            )
            assert not missing.allowed
            await t.aclose()
            await _stop(service)

        run(scenario())

    def test_drain_rejects_new_connections(self):
        async def scenario():
            service = await _service(grace_s=1.0)
            t = await TcpTransport.open("127.0.0.1", service.port)
            await t.request(
                ConnectRequest(client_id=1, nickname="n", firewalled=False)
            )
            await t.aclose()
            await _stop(service)
            # The listener is gone: connecting now fails.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", service.port)

        run(scenario())

    def test_fault_injection_at_the_seam(self):
        async def scenario():
            # loss_rate=1.0: every request is dropped before dispatch,
            # so no reply frame is ever written.
            service = await _service(faults=FaultConfig(loss_rate=1.0))
            t = await TcpTransport.open("127.0.0.1", service.port)
            reply = await t.request(
                ConnectRequest(client_id=1, nickname="n", firewalled=False),
                timeout=0.2,
            )
            assert reply is None  # suppressed, surfaced as a timeout
            assert service.faults.stats.messages_dropped >= 1
            assert service.server._sessions == {}  # never dispatched
            await t.aclose()
            await _stop(service)

        run(scenario())

    def test_malformed_fault_empties_payload(self):
        async def scenario():
            service = await _service(
                faults=FaultConfig(malformed_rate=1.0)
            )
            t = await TcpTransport.open("127.0.0.1", service.port)
            reply = await t.request(
                ConnectRequest(client_id=1, nickname="n", firewalled=False),
                timeout=2.0,
            )
            # ConnectReply carries no list payload the injector can
            # empty except server_list — it arrives degraded, and the
            # session itself still exists (the request was dispatched).
            assert 1 in service.server._sessions
            await t.request(
                PublishFiles(client_id=1, files=[desc()]), timeout=2.0
            )
            found = await t.request(
                SearchRequest(client_id=1, query=Keyword("shared")),
                timeout=2.0,
            )
            assert isinstance(found, SearchReply)
            assert found.results == []  # garbled: payload emptied
            assert service.faults.stats.malformed_replies >= 1
            await t.aclose()
            await _stop(service)
            del reply

        run(scenario())


class TestLoadGen:
    def test_plan_is_deterministic(self):
        config = LoadGenConfig(port=1, requests=200, sessions=4)
        a = build_plan(config)
        b = build_plan(config)
        assert [op.kind for op in a.ops] == [op.kind for op in b.ops]
        assert [op.message for op in a.ops] == [op.message for op in b.ops]
        assert a.mix == b.mix
        assert sum(a.mix.values()) == 200

    def test_plan_sessions_have_unique_ids_and_files(self):
        # More sessions than sharers: ids must still be unique.
        plan = build_plan(
            LoadGenConfig(port=1, requests=10, sessions=64)
        )
        ids = [s.client_id for s in plan.sessions]
        assert len(set(ids)) == len(ids) == 64
        assert all(s.files for s in plan.sessions)

    def test_end_to_end_against_live_service(self):
        async def scenario():
            obs = Observer()
            service = IndexService(ServiceConfig(), obs=obs)
            port = await service.start()
            result = await run_loadgen(
                LoadGenConfig(
                    port=port,
                    requests=400,
                    rate=4000.0,
                    sessions=4,
                    timeout_s=10.0,
                ),
                obs=obs,
            )
            await _stop(service)
            return result, obs.report()

        result, metrics = run(scenario())
        assert result.requests == 400
        assert result.ok == 400
        assert result.errors == 0 and result.timeouts == 0
        assert result.p99_ms >= result.p50_ms > 0
        assert result.throughput_rps > 0
        # The metrics payload carries the latency histogram and the
        # summary gauges the CI smoke job asserts on.
        assert metrics.histograms["loadgen/latency_s"]["count"] == 400
        assert metrics.gauges["loadgen/p99_ms"] > 0
        assert metrics.counters["service/connections"] == 4
        # Counters (not latencies) are deterministic: sent == ok per kind.
        for kind, n in result.mix.items():
            assert metrics.counters[f"loadgen/sent/{kind}"] == n
            assert metrics.counters[f"loadgen/ok/{kind}"] == n

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LoadGenConfig(requests=0)
        with pytest.raises(ValueError):
            LoadGenConfig(rate=0)
        with pytest.raises(ValueError):
            LoadGenConfig(sessions=0)
