"""Tests for the transport seam: SimTransport equivalence, TcpTransport."""

import asyncio

import pytest

from repro.edonkey.client import Client
from repro.edonkey.messages import (
    Ack,
    ConnectRequest,
    FileDescription,
    Keyword,
    QueryUsers,
)
from repro.edonkey.network import Network, NetworkConfig
from repro.edonkey.server import Server
from repro.edonkey.transport import SimTransport, TcpTransport, TransportError
from repro.edonkey.wire import read_frame, write_frame
from repro.service import IndexService, ServiceConfig
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def desc(file_id="f1", name="some file", size=1000):
    return FileDescription(file_id=file_id, name=name, size=size)


def make_network(*clients):
    config = NetworkConfig(workload=WorkloadConfig().small())
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    network = Network(generator, config)
    network.add_server(Server(0))
    for client in clients:
        network.add_client(client)
    return network


class TestSimTransport:
    def test_equivalent_to_direct_network(self):
        """A client driven through SimTransport produces exactly the
        replies a direct-network client gets: the adapter adds nothing."""
        sharer_a = Client(1, nickname="sharer-a")
        sharer_b = Client(2, nickname="sharer-b")
        network_direct = make_network(sharer_a, sharer_b)
        sharer_a.share(desc())
        assert sharer_a.connect(network_direct, 0)
        assert sharer_b.connect(network_direct, 0)
        direct_results = sharer_b.search(network_direct, Keyword("some"))
        direct_sources = sharer_b.find_sources(network_direct, "f1")
        assert direct_results and direct_sources  # non-vacuous comparison

        sharer_c = Client(1, nickname="sharer-a")
        sharer_d = Client(2, nickname="sharer-b")
        transport = SimTransport(make_network(sharer_c, sharer_d))
        sharer_c.share(desc())
        assert sharer_c.connect(transport, 0)
        assert sharer_d.connect(transport, 0)
        assert sharer_d.search(transport, Keyword("some")) == direct_results
        assert sharer_d.find_sources(transport, "f1") == direct_sources

    def test_delegates_message_stats(self):
        client = Client(1, nickname="peer")
        network = make_network(client)
        transport = SimTransport(network)
        client.connect(transport, 0)
        assert network.stats.sent.get("ConnectRequest") == 1

    def test_close_is_noop(self):
        SimTransport(make_network()).close()


def run(coro):
    return asyncio.run(coro)


async def _start_service(**kwargs):
    service = IndexService(ServiceConfig(**kwargs))
    port = await service.start()
    return service, port


class TestTcpTransport:
    def test_request_reply(self):
        async def scenario():
            service, port = await _start_service()
            transport = await TcpTransport.open("127.0.0.1", port)
            reply = await transport.request(
                ConnectRequest(client_id=1, nickname="n", firewalled=False)
            )
            assert reply.accepted
            await transport.aclose()
            service.request_stop()
            await service.serve_until_stopped()

        run(scenario())

    def test_pipelined_requests_match_by_seq(self):
        async def scenario():
            service, port = await _start_service()
            transport = await TcpTransport.open("127.0.0.1", port)
            await transport.request(
                ConnectRequest(client_id=1, nickname="alpha", firewalled=False)
            )
            # Fire many distinguishable requests without awaiting between
            # sends: every reply must land on its own request's future.
            patterns = [f"nick{i}" for i in range(20)]
            replies = await asyncio.gather(
                *(
                    transport.request(QueryUsers(pattern=p))
                    for p in patterns
                )
            )
            assert all(r.supported for r in replies)
            # alpha matches only the queries alpha actually contains.
            hits = [
                p for p, r in zip(patterns, replies) if r.users
            ]
            assert hits == []
            reply = await transport.request(QueryUsers(pattern="alp"))
            assert [u[1] for u in reply.users] == ["alpha"]
            await transport.aclose()
            service.request_stop()
            await service.serve_until_stopped()

        run(scenario())

    def test_timeout_returns_none(self):
        async def scenario():
            # A raw server that accepts but never replies.
            async def sink(reader, writer):
                await reader.read(-1)

            listener = await asyncio.start_server(sink, "127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            transport = await TcpTransport.open("127.0.0.1", port)
            reply = await transport.request(Ack(), timeout=0.05)
            assert reply is None
            await transport.aclose()
            listener.close()
            await listener.wait_closed()

        run(scenario())

    def test_connect_refused_raises_transport_error(self):
        async def scenario():
            # Bind-and-close to get a port nothing listens on.
            listener = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = listener.sockets[0].getsockname()[1]
            listener.close()
            await listener.wait_closed()
            with pytest.raises(TransportError, match="cannot connect"):
                await TcpTransport.open("127.0.0.1", port)

        run(scenario())

    def test_client_to_client_unroutable(self):
        async def scenario():
            service, port = await _start_service()
            transport = await TcpTransport.open("127.0.0.1", port)
            with pytest.raises(TransportError, match="server-mediated"):
                await transport.to_client(5, Ack())
            with pytest.raises(TransportError, match="server-mediated"):
                await transport.callback_to_client(5, Ack())
            await transport.aclose()
            service.request_stop()
            await service.serve_until_stopped()

        run(scenario())

    def test_peer_wire_error_fails_pending_requests(self):
        async def scenario():
            # A server that answers any frame with garbage bytes.
            async def garbage(reader, writer):
                frame = await read_frame(reader)
                assert frame is not None
                writer.write(b"\x00\x00\x00\x02{}")
                await writer.drain()
                await reader.read(-1)

            listener = await asyncio.start_server(garbage, "127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            transport = await TcpTransport.open("127.0.0.1", port)
            with pytest.raises(Exception):
                await transport.request(Ack(), timeout=5.0)
            await transport.aclose()
            listener.close()
            await listener.wait_closed()

        run(scenario())

    def test_request_after_close_raises(self):
        async def scenario():
            service, port = await _start_service()
            transport = await TcpTransport.open("127.0.0.1", port)
            await transport.aclose()
            with pytest.raises(TransportError, match="closed"):
                await transport.request(Ack())
            service.request_stop()
            await service.serve_until_stopped()

        run(scenario())
