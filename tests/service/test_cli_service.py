"""CLI-level tests for ``repro serve`` / ``repro loadgen``."""

import asyncio
import json
import threading

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.grace == 5.0
        assert args.loss_rate == 0.0
        assert args.port_file is None

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.requests == 1000
        assert args.rate == 500.0
        assert args.sessions == 8
        assert args.scale == "tiny"


class TestErrorPaths:
    def test_loadgen_without_port_is_rc2(self, capsys):
        assert main(["loadgen"]) == 2
        assert "no target port" in capsys.readouterr().err

    def test_loadgen_unreadable_port_file_is_rc2(self, tmp_path, capsys):
        assert main(
            ["loadgen", "--port-file", str(tmp_path / "missing")]
        ) == 2
        assert "cannot read --port-file" in capsys.readouterr().err

    def test_loadgen_garbage_port_file_is_rc2(self, tmp_path, capsys):
        port_file = tmp_path / "port"
        port_file.write_text("not a port\n")
        assert main(["loadgen", "--port-file", str(port_file)]) == 2
        assert "cannot read --port-file" in capsys.readouterr().err

    def test_loadgen_invalid_requests_is_rc2(self, capsys):
        assert main(["loadgen", "--port", "1", "--requests", "0"]) == 2
        assert "requests must be" in capsys.readouterr().err

    def test_loadgen_unreachable_service_is_rc2(self, capsys):
        # Nothing listens on the port: the transport gives up after its
        # retries and the CLI reports it as an operational error.
        rc = main(
            ["loadgen", "--port", "1", "--connect-retries", "0",
             "--requests", "1"]
        )
        assert rc == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_serve_bad_port_file_parent_is_rc2(self, tmp_path, capsys):
        rc = main(
            ["serve", "--port-file", str(tmp_path / "nodir" / "port")]
        )
        assert rc == 2
        assert "--port-file" in capsys.readouterr().err

    def test_serve_bad_metrics_parent_is_rc2(self, tmp_path, capsys):
        rc = main(
            ["serve", "--metrics-out", str(tmp_path / "nodir" / "m.json")]
        )
        assert rc == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_loadgen_bad_metrics_parent_is_rc2(self, tmp_path, capsys):
        rc = main(
            ["loadgen", "--port", "1",
             "--metrics-out", str(tmp_path / "nodir" / "m.json")]
        )
        assert rc == 2
        assert "--metrics-out" in capsys.readouterr().err


class TestServeLoadgenSmoke:
    def test_loadgen_cli_against_live_service(self, tmp_path, capsys):
        """`repro loadgen` (the real CLI path) against a service hosted
        on a background event loop: rc=0 and the metrics file carries
        the percentiles and a clean counter set."""
        from repro.service import IndexService, ServiceConfig

        metrics_file = tmp_path / "loadgen.json"
        started = threading.Event()
        stopped = {}
        holder = {}

        def host():
            async def body():
                service = IndexService(ServiceConfig())
                await service.start()
                holder["service"] = service
                holder["loop"] = asyncio.get_running_loop()
                started.set()
                await service.serve_until_stopped()
                stopped["requests"] = service.requests_total

            asyncio.run(body())

        thread = threading.Thread(target=host)
        thread.start()
        assert started.wait(10)
        service = holder["service"]

        rc = main(
            ["loadgen", "--port", str(service.port),
             "--requests", "200", "--rate", "2000", "--sessions", "4",
             "--metrics-out", str(metrics_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "200 requests" in out
        assert "p99" in out
        assert "Request mix:" in out

        payload = json.loads(metrics_file.read_text())
        assert payload["schema"] == "repro.metrics/2"
        assert payload["gauges"]["loadgen/p99_ms"] > 0
        assert payload["histograms"]["loadgen/latency_s"]["count"] == 200
        assert payload["counters"].get("loadgen/timeouts", 0) == 0

        holder["loop"].call_soon_threadsafe(service.request_stop)
        thread.join(10)
        assert not thread.is_alive()
        # connect + publish per session ride on top of the 200 plan ops.
        assert stopped["requests"] == 200 + 2 * 4


def test_serve_drain_exits_zero_under_sigterm(tmp_path):
    """Full-fidelity drain contract: run `repro serve` as a subprocess,
    SIGTERM it mid-life, assert rc=0 and a freed port."""
    import os
    import signal
    import socket
    import subprocess
    import sys
    import time

    port_file = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port-file", str(port_file), "--grace", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if port_file.exists() and port_file.read_text().strip():
                break
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        # The service accepts while alive.
        with socket.create_connection(("127.0.0.1", port), timeout=5):
            pass
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "Drained" in out
    # No orphaned socket: the port refuses connections after the drain.
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=1)
