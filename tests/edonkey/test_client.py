"""Tests for the eDonkey client: browsing, block transfer, downloads."""

import pytest

from repro.edonkey.client import (
    Client,
    ClientConfig,
    SharedFile,
    block_checksum,
)
from repro.edonkey.hashing import BLOCK_SIZE
from repro.edonkey.messages import (
    BlockRequest,
    BrowseRequest,
    FileDescription,
    FileStatusRequest,
)
from repro.edonkey.network import Network, NetworkConfig
from repro.edonkey.server import Server
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def desc(file_id="f1", size=1000, name="file"):
    return FileDescription(file_id=file_id, name=name, size=size)


def multiblock_desc(blocks=3):
    return FileDescription(
        file_id="big", name="big file", size=BLOCK_SIZE * blocks - 100
    )


def make_network(*clients):
    config = NetworkConfig(workload=WorkloadConfig().small())
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    network = Network(generator, config)
    network.add_server(Server(0))
    for client in clients:
        network.add_client(client)
    return network


class TestSharedFile:
    def test_complete(self):
        shared = SharedFile.complete(multiblock_desc(3))
        assert shared.num_blocks == 3
        assert shared.is_complete
        assert shared.is_shareable

    def test_empty(self):
        shared = SharedFile.empty(multiblock_desc(2))
        assert not shared.is_shareable
        assert shared.missing_blocks() == [0, 1]

    def test_partial_is_shareable(self):
        shared = SharedFile.empty(multiblock_desc(2))
        shared.blocks_present[0] = True
        assert shared.is_shareable
        assert not shared.is_complete


class TestHandlers:
    def test_browse_allowed(self):
        client = Client(1, "nick")
        client.share(desc())
        reply = client.handle_browse(BrowseRequest(requester_id=2))
        assert reply.allowed
        assert [f.file_id for f in reply.files] == ["f1"]

    def test_browse_disabled(self):
        client = Client(1, "nick", ClientConfig(browseable=False))
        client.share(desc())
        reply = client.handle_browse(BrowseRequest(requester_id=2))
        assert not reply.allowed
        assert reply.files == []

    def test_file_status(self):
        client = Client(1, "nick")
        client.share(desc())
        status = client.handle_file_status(FileStatusRequest(file_id="f1"))
        assert status.available
        assert status.blocks == [True]

    def test_file_status_unknown(self):
        client = Client(1, "nick")
        status = client.handle_file_status(FileStatusRequest(file_id="zz"))
        assert not status.available

    def test_block_request_ok(self):
        client = Client(1, "nick")
        client.share(desc())
        reply = client.handle_block_request(BlockRequest(file_id="f1", block_index=0))
        assert reply.ok
        assert reply.checksum == block_checksum("f1", 0)

    def test_block_request_out_of_range(self):
        client = Client(1, "nick")
        client.share(desc())
        assert not client.handle_block_request(
            BlockRequest(file_id="f1", block_index=5)
        ).ok

    def test_block_request_missing_block(self):
        client = Client(1, "nick")
        client.cache["big"] = SharedFile.empty(multiblock_desc(2))
        assert not client.handle_block_request(
            BlockRequest(file_id="big", block_index=0)
        ).ok

    def test_corrupting_uploader_returns_bad_checksum(self):
        client = Client(1, "nick", ClientConfig(corrupts_uploads=True))
        client.share(desc())
        reply = client.handle_block_request(BlockRequest(file_id="f1", block_index=0))
        assert reply.ok
        assert reply.checksum != block_checksum("f1", 0)


class TestConnectPublish:
    def test_connect_publishes_cache(self):
        client = Client(1, "nick")
        client.share(desc())
        network = make_network(client)
        assert client.connect(network, 0)
        sources = client.find_sources(network, "f1")
        assert sources == []  # own id excluded
        other = Client(2, "other")
        network.add_client(other)
        other.connect(network, 0)
        assert other.find_sources(network, "f1") == [1]

    def test_publish_before_connect(self):
        client = Client(1, "nick")
        network = make_network(client)
        with pytest.raises(RuntimeError):
            client.publish(network)

    def test_find_sources_before_connect(self):
        client = Client(1, "nick")
        network = make_network(client)
        with pytest.raises(RuntimeError):
            client.find_sources(network, "f")


class TestDownload:
    def test_successful_download(self):
        source = Client(1, "src")
        target = Client(2, "dst")
        the_file = multiblock_desc(3)
        source.share(the_file)
        network = make_network(source, target)
        source.connect(network, 0)
        target.connect(network, 0)
        assert target.download(network, the_file)
        assert the_file.file_id in target.shared_file_ids()
        assert target.cache[the_file.file_id].is_complete

    def test_download_publishes_file(self):
        source = Client(1, "src")
        target = Client(2, "dst")
        the_file = desc()
        source.share(the_file)
        network = make_network(source, target)
        source.connect(network, 0)
        target.connect(network, 0)
        target.download(network, the_file)
        third = Client(3, "watcher")
        network.add_client(third)
        third.connect(network, 0)
        assert sorted(third.find_sources(network, "f1")) == [1, 2]

    def test_download_without_sources_fails(self):
        target = Client(2, "dst")
        network = make_network(target)
        target.connect(network, 0)
        assert not target.download(network, desc("nowhere"))
        assert target.download_failures == 1

    def test_corruption_detected_and_recovered(self):
        corrupt = Client(1, "bad", ClientConfig(corrupts_uploads=True))
        good = Client(2, "good")
        target = Client(3, "dst")
        the_file = desc()
        corrupt.share(the_file)
        good.share(the_file)
        network = make_network(corrupt, good, target)
        for c in (corrupt, good, target):
            c.connect(network, 0)
        assert target.download(network, the_file, sources=[1, 2])
        assert target.corruptions_detected == 1

    def test_corruption_only_source_fails(self):
        corrupt = Client(1, "bad", ClientConfig(corrupts_uploads=True))
        target = Client(3, "dst")
        the_file = desc()
        corrupt.share(the_file)
        network = make_network(corrupt, target)
        corrupt.connect(network, 0)
        target.connect(network, 0)
        assert not target.download(network, the_file)
        assert target.corruptions_detected >= 1

    def test_partial_sharing_from_partial_source(self):
        """A source holding one verified block still serves that block."""
        the_file = multiblock_desc(2)
        partial = Client(1, "partial")
        partial.cache[the_file.file_id] = SharedFile.empty(the_file)
        partial.cache[the_file.file_id].blocks_present[0] = True
        target = Client(2, "dst")
        network = make_network(partial, target)
        partial.connect(network, 0)
        target.connect(network, 0)
        # Download cannot complete (block 1 unavailable anywhere) but block
        # 0 is fetched, and the target then shares the partial file.
        assert not target.download(network, the_file, sources=[1])
        assert target.cache[the_file.file_id].blocks_present[0]
        assert the_file.file_id in target.shared_file_ids()

    def test_firewalled_source_reached_via_callback(self):
        """A firewalled source connected to a server is reachable through
        the server-forced callback (Section 2.1)."""
        source = Client(1, "src", ClientConfig(firewalled=True))
        target = Client(2, "dst")
        the_file = desc()
        source.share(the_file)
        network = make_network(source, target)
        source.connect(network, 0)
        target.connect(network, 0)
        assert target.download(network, the_file, sources=[1])

    def test_firewalled_source_without_server_unreachable(self):
        source = Client(1, "src", ClientConfig(firewalled=True))
        target = Client(2, "dst")
        the_file = desc()
        source.share(the_file)
        network = make_network(source, target)
        # The source never connects to a server: no callback possible.
        target.connect(network, 0)
        assert not target.download(network, the_file, sources=[1])

    def test_two_firewalled_peers_cannot_exchange(self):
        source = Client(1, "src", ClientConfig(firewalled=True))
        target = Client(2, "dst", ClientConfig(firewalled=True))
        the_file = desc()
        source.share(the_file)
        network = make_network(source, target)
        source.connect(network, 0)
        target.connect(network, 0)
        assert not target.download(network, the_file, sources=[1])
