"""Tests for the eDonkey index server."""

import pytest

from repro.edonkey.messages import (
    ConnectRequest,
    FileDescription,
    Keyword,
    PublishFiles,
    QuerySources,
    QueryUsers,
    SearchRequest,
    ServerListRequest,
    UdpSearchRequest,
    query_and,
)
from repro.edonkey.server import Server, ServerConfig


def connect(server, client_id, nickname="peer", firewalled=False):
    return server.handle_connect(
        ConnectRequest(client_id=client_id, nickname=nickname, firewalled=firewalled)
    )


def publish(server, client_id, *files):
    server.handle_publish(PublishFiles(client_id=client_id, files=list(files)))


def desc(file_id, name="file name", size=1000, **kw):
    return FileDescription(file_id=file_id, name=name, size=size, **kw)


class TestSessions:
    def test_connect_accepted(self):
        server = Server(0)
        reply = connect(server, 1)
        assert reply.accepted
        assert server.num_users == 1

    def test_server_full(self):
        server = Server(0, ServerConfig(max_users=1))
        connect(server, 1)
        reply = connect(server, 2)
        assert not reply.accepted
        assert "full" in reply.reason

    def test_publish_requires_session(self):
        server = Server(0)
        with pytest.raises(KeyError):
            publish(server, 99, desc("f"))

    def test_disconnect_removes_sources(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, desc("f"))
        server.handle_disconnect(1)
        reply = server.handle_query_sources(QuerySources(client_id=2, file_id="f"))
        assert reply.sources == []

    def test_disconnect_unknown_is_noop(self):
        Server(0).handle_disconnect(42)


class TestPublishAndSearch:
    def test_search_by_keyword(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, desc("f1", name="great song"), desc("f2", name="other"))
        reply = server.handle_search(
            SearchRequest(client_id=9, query=Keyword("great"))
        )
        assert [r.file_id for r in reply.results] == ["f1"]

    def test_search_combined_query(self):
        server = Server(0)
        connect(server, 1)
        publish(
            server,
            1,
            desc("small", name="demo track", size=100),
            desc("big", name="demo movie", size=10**9),
        )
        from repro.edonkey.messages import SizeRange

        query = query_and(Keyword("demo"), SizeRange(min_size=10**6))
        reply = server.handle_search(SearchRequest(client_id=9, query=query))
        assert [r.file_id for r in reply.results] == ["big"]

    def test_search_limit_truncates(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, *(desc(f"f{i}", name="common") for i in range(10)))
        reply = server.handle_search(
            SearchRequest(client_id=9, query=Keyword("common"), limit=3)
        )
        assert len(reply.results) == 3
        assert reply.truncated

    def test_republish_replaces(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, desc("old", name="alpha"))
        publish(server, 1, desc("new", name="beta"))
        assert server.handle_search(
            SearchRequest(client_id=9, query=Keyword("alpha"))
        ).results == []
        reply = server.handle_search(SearchRequest(client_id=9, query=Keyword("beta")))
        assert [r.file_id for r in reply.results] == ["new"]

    def test_sources_across_clients(self):
        server = Server(0)
        connect(server, 1)
        connect(server, 2)
        publish(server, 1, desc("f"))
        publish(server, 2, desc("f"))
        reply = server.handle_query_sources(QuerySources(client_id=9, file_id="f"))
        assert reply.sources == [1, 2]

    def test_keyword_index_cleanup_on_last_source(self):
        server = Server(0)
        connect(server, 1)
        connect(server, 2)
        publish(server, 1, desc("f", name="unique-token"))
        publish(server, 2, desc("f", name="unique-token"))
        server.handle_disconnect(1)
        # still searchable through client 2
        assert server.handle_search(
            SearchRequest(client_id=9, query=Keyword("unique-token".split("-")[0]))
        ).results
        server.handle_disconnect(2)
        assert not server.handle_search(
            SearchRequest(client_id=9, query=Keyword("unique"))
        ).results


class TestQueryUsers:
    def test_substring_match(self):
        server = Server(0)
        connect(server, 1, nickname="darkstar42")
        connect(server, 2, nickname="luna7")
        reply = server.handle_query_users(QueryUsers(pattern="dar"))
        assert [u[0] for u in reply.users] == [1]

    def test_unsupported_server(self):
        server = Server(0, ServerConfig(supports_query_users=False))
        connect(server, 1, nickname="darkstar42")
        reply = server.handle_query_users(QueryUsers(pattern="dar"))
        assert not reply.supported
        assert reply.users == []

    def test_reply_limit(self):
        server = Server(0, ServerConfig(reply_limit=5))
        for i in range(10):
            connect(server, i, nickname=f"aaa-{i}")
        reply = server.handle_query_users(QueryUsers(pattern="aaa"))
        assert len(reply.users) == 5
        assert reply.truncated

    def test_firewall_flag_reported(self):
        server = Server(0)
        connect(server, 1, nickname="abcdef", firewalled=True)
        reply = server.handle_query_users(QueryUsers(pattern="abc"))
        assert reply.users[0][2] is True

    def test_mid_nickname_trigram(self):
        server = Server(0)
        connect(server, 1, nickname="xdarky")
        reply = server.handle_query_users(QueryUsers(pattern="dark"))
        assert [u[0] for u in reply.users] == [1]

    def test_short_pattern_scans(self):
        server = Server(0)
        connect(server, 1, nickname="zq9")
        reply = server.handle_query_users(QueryUsers(pattern="zq"))
        assert [u[0] for u in reply.users] == [1]

    def test_disconnect_cleans_trigram_index(self):
        server = Server(0)
        connect(server, 1, nickname="vanish")
        server.handle_disconnect(1)
        reply = server.handle_query_users(QueryUsers(pattern="van"))
        assert reply.users == []

    def test_default_cap_is_200(self):
        # The default config caps at 200 even with 250 genuine matches,
        # and reports the truncation.
        server = Server(0)
        for i in range(250):
            connect(server, i, nickname=f"common-{i:03d}")
        reply = server.handle_query_users(QueryUsers(pattern="com"))
        assert len(reply.users) == 200
        assert reply.truncated
        # Candidates are walked in client-id order, so the cap keeps the
        # lowest ids deterministically.
        assert [u[0] for u in reply.users] == list(range(200))

    def test_exactly_at_cap_is_not_truncated(self):
        server = Server(0, ServerConfig(reply_limit=5))
        for i in range(5):
            connect(server, i, nickname=f"aaa-{i}")
        reply = server.handle_query_users(QueryUsers(pattern="aaa"))
        assert len(reply.users) == 5
        assert not reply.truncated

    def test_trigram_candidate_without_substring_match(self):
        # "dxa" IS a trigram of "dxaq" but the full pattern "dxaz" is
        # not a substring: the trigram index may nominate a candidate,
        # the substring check must still reject it.
        server = Server(0)
        connect(server, 1, nickname="dxaq")
        reply = server.handle_query_users(QueryUsers(pattern="dxaz"))
        assert reply.users == []

    def test_trigram_lookup_is_case_insensitive(self):
        server = Server(0)
        connect(server, 1, nickname="DarkWolf")
        reply = server.handle_query_users(QueryUsers(pattern="ARKWO"))
        assert [u[1] for u in reply.users] == ["DarkWolf"]

    def test_short_nickname_unreachable_via_trigrams(self):
        # A 2-char nickname indexes no trigrams; a >= 3 char pattern can
        # never match it anyway (substring longer than the name).
        server = Server(0)
        connect(server, 1, nickname="zq")
        assert server.handle_query_users(QueryUsers(pattern="zqx")).users == []
        # ... but the short-pattern full scan still finds it.
        assert server.handle_query_users(QueryUsers(pattern="zq")).users == [
            (1, "zq", False)
        ]


class TestUdpSearch:
    def _populated(self, n=60):
        server = Server(0)
        connect(server, 1, nickname="sharer")
        publish(
            server,
            1,
            *[desc(file_id=f"f{i}", name=f"common tune {i}") for i in range(n)],
        )
        return server

    def test_same_index_as_tcp_search(self):
        server = self._populated(n=10)
        udp = server.handle_udp_search(
            UdpSearchRequest(client_id=9, query=Keyword("common"), limit=200)
        )
        tcp = server.handle_search(
            SearchRequest(client_id=9, query=Keyword("common"), limit=200)
        )
        assert udp == tcp

    def test_default_limit_is_50(self):
        server = self._populated(n=60)
        reply = server.handle_udp_search(
            UdpSearchRequest(client_id=9, query=Keyword("common"))
        )
        assert len(reply.results) == 50
        assert reply.truncated

    def test_requester_needs_no_session(self):
        # UDP queries come from clients connected to *other* servers.
        server = self._populated(n=1)
        reply = server.handle_udp_search(
            UdpSearchRequest(client_id=424242, query=Keyword("common"))
        )
        assert len(reply.results) == 1

    def test_no_match_is_empty_not_truncated(self):
        server = self._populated(n=5)
        reply = server.handle_udp_search(
            UdpSearchRequest(client_id=9, query=Keyword("nosuchword"))
        )
        assert reply.results == []
        assert not reply.truncated


class TestServerList:
    def test_gossip(self):
        server = Server(0)
        server.learn_servers([1, 2])
        reply = server.handle_server_list(ServerListRequest())
        assert reply.servers == [0, 1, 2]

    def test_connect_returns_server_list(self):
        server = Server(0)
        server.learn_servers([5])
        reply = connect(server, 1)
        assert reply.server_list == [0, 5]
