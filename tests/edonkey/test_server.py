"""Tests for the eDonkey index server."""

import pytest

from repro.edonkey.messages import (
    ConnectRequest,
    FileDescription,
    Keyword,
    PublishFiles,
    QuerySources,
    QueryUsers,
    SearchRequest,
    ServerListRequest,
    query_and,
)
from repro.edonkey.server import Server, ServerConfig


def connect(server, client_id, nickname="peer", firewalled=False):
    return server.handle_connect(
        ConnectRequest(client_id=client_id, nickname=nickname, firewalled=firewalled)
    )


def publish(server, client_id, *files):
    server.handle_publish(PublishFiles(client_id=client_id, files=list(files)))


def desc(file_id, name="file name", size=1000, **kw):
    return FileDescription(file_id=file_id, name=name, size=size, **kw)


class TestSessions:
    def test_connect_accepted(self):
        server = Server(0)
        reply = connect(server, 1)
        assert reply.accepted
        assert server.num_users == 1

    def test_server_full(self):
        server = Server(0, ServerConfig(max_users=1))
        connect(server, 1)
        reply = connect(server, 2)
        assert not reply.accepted
        assert "full" in reply.reason

    def test_publish_requires_session(self):
        server = Server(0)
        with pytest.raises(KeyError):
            publish(server, 99, desc("f"))

    def test_disconnect_removes_sources(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, desc("f"))
        server.handle_disconnect(1)
        reply = server.handle_query_sources(QuerySources(client_id=2, file_id="f"))
        assert reply.sources == []

    def test_disconnect_unknown_is_noop(self):
        Server(0).handle_disconnect(42)


class TestPublishAndSearch:
    def test_search_by_keyword(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, desc("f1", name="great song"), desc("f2", name="other"))
        reply = server.handle_search(
            SearchRequest(client_id=9, query=Keyword("great"))
        )
        assert [r.file_id for r in reply.results] == ["f1"]

    def test_search_combined_query(self):
        server = Server(0)
        connect(server, 1)
        publish(
            server,
            1,
            desc("small", name="demo track", size=100),
            desc("big", name="demo movie", size=10**9),
        )
        from repro.edonkey.messages import SizeRange

        query = query_and(Keyword("demo"), SizeRange(min_size=10**6))
        reply = server.handle_search(SearchRequest(client_id=9, query=query))
        assert [r.file_id for r in reply.results] == ["big"]

    def test_search_limit_truncates(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, *(desc(f"f{i}", name="common") for i in range(10)))
        reply = server.handle_search(
            SearchRequest(client_id=9, query=Keyword("common"), limit=3)
        )
        assert len(reply.results) == 3
        assert reply.truncated

    def test_republish_replaces(self):
        server = Server(0)
        connect(server, 1)
        publish(server, 1, desc("old", name="alpha"))
        publish(server, 1, desc("new", name="beta"))
        assert server.handle_search(
            SearchRequest(client_id=9, query=Keyword("alpha"))
        ).results == []
        reply = server.handle_search(SearchRequest(client_id=9, query=Keyword("beta")))
        assert [r.file_id for r in reply.results] == ["new"]

    def test_sources_across_clients(self):
        server = Server(0)
        connect(server, 1)
        connect(server, 2)
        publish(server, 1, desc("f"))
        publish(server, 2, desc("f"))
        reply = server.handle_query_sources(QuerySources(client_id=9, file_id="f"))
        assert reply.sources == [1, 2]

    def test_keyword_index_cleanup_on_last_source(self):
        server = Server(0)
        connect(server, 1)
        connect(server, 2)
        publish(server, 1, desc("f", name="unique-token"))
        publish(server, 2, desc("f", name="unique-token"))
        server.handle_disconnect(1)
        # still searchable through client 2
        assert server.handle_search(
            SearchRequest(client_id=9, query=Keyword("unique-token".split("-")[0]))
        ).results
        server.handle_disconnect(2)
        assert not server.handle_search(
            SearchRequest(client_id=9, query=Keyword("unique"))
        ).results


class TestQueryUsers:
    def test_substring_match(self):
        server = Server(0)
        connect(server, 1, nickname="darkstar42")
        connect(server, 2, nickname="luna7")
        reply = server.handle_query_users(QueryUsers(pattern="dar"))
        assert [u[0] for u in reply.users] == [1]

    def test_unsupported_server(self):
        server = Server(0, ServerConfig(supports_query_users=False))
        connect(server, 1, nickname="darkstar42")
        reply = server.handle_query_users(QueryUsers(pattern="dar"))
        assert not reply.supported
        assert reply.users == []

    def test_reply_limit(self):
        server = Server(0, ServerConfig(reply_limit=5))
        for i in range(10):
            connect(server, i, nickname=f"aaa-{i}")
        reply = server.handle_query_users(QueryUsers(pattern="aaa"))
        assert len(reply.users) == 5
        assert reply.truncated

    def test_firewall_flag_reported(self):
        server = Server(0)
        connect(server, 1, nickname="abcdef", firewalled=True)
        reply = server.handle_query_users(QueryUsers(pattern="abc"))
        assert reply.users[0][2] is True

    def test_mid_nickname_trigram(self):
        server = Server(0)
        connect(server, 1, nickname="xdarky")
        reply = server.handle_query_users(QueryUsers(pattern="dark"))
        assert [u[0] for u in reply.users] == [1]

    def test_short_pattern_scans(self):
        server = Server(0)
        connect(server, 1, nickname="zq9")
        reply = server.handle_query_users(QueryUsers(pattern="zq"))
        assert [u[0] for u in reply.users] == [1]

    def test_disconnect_cleans_trigram_index(self):
        server = Server(0)
        connect(server, 1, nickname="vanish")
        server.handle_disconnect(1)
        reply = server.handle_query_users(QueryUsers(pattern="van"))
        assert reply.users == []


class TestServerList:
    def test_gossip(self):
        server = Server(0)
        server.learn_servers([1, 2])
        reply = server.handle_server_list(ServerListRequest())
        assert reply.servers == [0, 1, 2]

    def test_connect_returns_server_list(self):
        server = Server(0)
        server.learn_servers([5])
        reply = connect(server, 1)
        assert reply.server_list == [0, 5]
