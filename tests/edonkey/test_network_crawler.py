"""End-to-end tests: network construction and multi-day crawls."""

import dataclasses

import pytest

from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.trace.stats import general_characteristics
from repro.workload.config import WorkloadConfig


def tiny_network_config(**kwargs):
    workload = dataclasses.replace(
        WorkloadConfig().small(),
        num_clients=60,
        num_files=800,
        days=6,
        mainstream_pool_size=60,
    )
    defaults = dict(num_servers=2, workload=workload)
    defaults.update(kwargs)
    return NetworkConfig(**defaults)


@pytest.fixture(scope="module")
def network():
    return build_network(tiny_network_config(), seed=5)


@pytest.fixture(scope="module")
def crawl_result(network):
    crawler = Crawler(
        network,
        CrawlerConfig(days=4, browse_budget_start=500, browse_budget_end=400),
        seed=5,
    )
    trace = crawler.crawl()
    return crawler, trace


class TestBuildNetwork:
    def test_servers_and_clients_created(self, network):
        assert len(network.servers) == 2
        assert len(network.clients) >= 60

    def test_all_clients_connected(self, network):
        for client in network.clients.values():
            assert client.server_id in network.servers

    def test_sharers_published(self, network):
        sharers = [
            p
            for p in network.generator.profiles
            if not p.free_rider and p.target_cache_size > 0
        ]
        published = 0
        for profile in sharers:
            client = network.clients[profile.meta.client_id]
            if client.shared_file_ids():
                published += 1
        assert published > 0

    def test_advance_day_churns(self, network):
        before = {
            cid: set(network.cache_indices(cid)) for cid in network.clients
        }
        network.advance_day()
        changed = sum(
            1
            for cid in network.clients
            if set(network.cache_indices(cid)) != before[cid]
        )
        assert changed > 0


class TestCrawl:
    def test_trace_has_snapshots(self, crawl_result):
        _, trace = crawl_result
        assert trace.num_snapshots > 0
        assert len(trace.days()) == 4

    def test_firewalled_clients_never_browsed(self, crawl_result, network):
        _, trace = crawl_result
        firewalled = {
            cid
            for cid, client in network.clients.items()
            if client.config.firewalled
        }
        assert firewalled, "expected some firewalled clients"
        assert not (set(trace.clients) & firewalled)

    def test_browse_disabled_clients_absent(self, crawl_result, network):
        _, trace = crawl_result
        hidden = {
            cid
            for cid, client in network.clients.items()
            if not client.config.browseable
        }
        assert not (set(trace.clients) & hidden)

    def test_stats_accounting(self, crawl_result):
        crawler, _ = crawl_result
        stats = crawler.stats
        assert stats.nickname_queries > 0
        assert stats.users_discovered > 0
        assert stats.browse_succeeded > 0
        assert (
            stats.browse_attempts
            == stats.browse_succeeded + stats.browse_refused
        )

    def test_trace_feeds_analysis_pipeline(self, crawl_result):
        _, trace = crawl_result
        chars = general_characteristics(trace)
        assert chars.num_clients == len(trace.clients)
        assert chars.num_distinct_files > 0

    def test_file_metadata_recorded(self, crawl_result):
        _, trace = crawl_result
        assert trace.distinct_files() <= set(trace.files)


class TestQueryUsersDependency:
    def test_crawl_collapses_without_query_users(self):
        """If no server supports query-users, the crawler finds nobody —
        the paper's observation that such traces can no longer be
        collected."""
        config = tiny_network_config(query_users_support_fraction=0.0)
        network = build_network(config, seed=6)
        crawler = Crawler(network, CrawlerConfig(days=2), seed=6)
        trace = crawler.crawl()
        assert trace.num_snapshots == 0
        assert crawler.stats.users_discovered == 0
        assert crawler.stats.servers_without_query_users == len(network.servers)

    def test_budget_decays(self):
        config = CrawlerConfig(days=10, browse_budget_start=100, browse_budget_end=50)
        assert config.budget_on(0) == 100
        assert config.budget_on(9) == 50
        assert config.budget_on(5) < 100
