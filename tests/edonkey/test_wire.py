"""Tests for the ``repro.wire/1`` codec.

The round-trip suite is registry-driven: every message dataclass the
codec knows about gets a populated example and must survive
encode → decode byte-exactly (re-encoding the decoded message yields
the same payload bytes).  The error-path tests pin the strictness
contract: unknown types, unknown/missing fields, wrong scalar types,
truncated and oversized frames all raise :class:`WireError` with a
message that names the offender.
"""

import dataclasses
import json
import struct

import pytest

from repro.edonkey import messages as m
from repro.edonkey.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    WIRE_SCHEMA,
    WireError,
    decode_frame,
    decode_frames,
    decode_payload,
    encode_frame,
    encode_payload,
    frame_length,
)

# ----------------------------------------------------------------------
# Example instances, one per registered message type.  Values are chosen
# to exercise nesting (Query trees), tuples (FileDescription.tags,
# profile entries), bytes (block payloads) and defaults left in place.

_DESC = m.FileDescription(
    file_id="f0000abc",
    name="Led_Zeppelin-Stairway.mp3",
    size=9_000_000,
    kind="audio",
    tags=("rock", "classic"),
    availability=3,
    bitrate=192,
)

_QUERY = m.query_and(
    m.Keyword("stairway"),
    m.query_or(m.Keyword("rock", field="tag"), m.Keyword("audio", field="kind")),
    m.SizeRange(min_size=1_000, max_size=10_000_000),
    m.AvailabilityRange(min_avail=2),
    m.BitrateRange(min_rate=128),
    m.Not(m.Keyword("live")),
)

_EXAMPLES = {
    "FileDescription": _DESC,
    "Keyword": m.Keyword("zeppelin", field="tag"),
    "SizeRange": m.SizeRange(min_size=None, max_size=4096),
    "And": m.query_and(m.Keyword("a"), m.Keyword("b")),
    "Or": m.query_or(m.Keyword("a"), m.SizeRange(min_size=7)),
    "Not": m.Not(m.Keyword("bootleg")),
    "ConnectRequest": m.ConnectRequest(
        client_id=7, nickname="darkwolf42", firewalled=True
    ),
    "ConnectReply": m.ConnectReply(
        accepted=True, server_list=[0, 3, 9], reason=""
    ),
    "PublishFiles": m.PublishFiles(client_id=7, files=[_DESC]),
    "SearchRequest": m.SearchRequest(client_id=7, query=_QUERY, limit=50),
    "UdpSearchRequest": m.UdpSearchRequest(client_id=7, query=_QUERY),
    "SearchReply": m.SearchReply(results=[_DESC], truncated=True),
    "QuerySources": m.QuerySources(client_id=7, file_id="f0000abc"),
    "SourcesReply": m.SourcesReply(file_id="f0000abc", sources=[1, 2, 3]),
    "QueryUsers": m.QueryUsers(pattern="wolf"),
    "ServerListRequest": m.ServerListRequest(),
    "CallbackRequest": m.CallbackRequest(requester_id=7, target_id=9),
    "Ack": m.Ack(ok=False),
    "ErrorReply": m.ErrorReply(reason="publish before connect"),
    "BrowseUser": m.BrowseUser(requester_id=7, target_id=9),
    "BrowseRequest": m.BrowseRequest(requester_id=7),
    "BrowseReply": m.BrowseReply(allowed=True, files=[_DESC]),
    "FileStatusRequest": m.FileStatusRequest(file_id="f0000abc"),
}


def _example(name: str):
    """A populated instance of message type ``name``.

    Types without a hand-written example are built generically from
    their field hints, so a *new* message dataclass cannot silently
    skip the round-trip suite.
    """
    if name in _EXAMPLES:
        return _EXAMPLES[name]
    cls = MESSAGE_TYPES[name]
    kwargs = {}
    for field in dataclasses.fields(cls):
        if field.default is not dataclasses.MISSING:
            continue
        if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            continue
        kwargs[field.name] = _generic_value(field.type)
    return cls(**kwargs)


def _generic_value(hint):
    text = str(hint)
    # Container checks first: "List[int]" must not match the int branch.
    if "List" in text or "list" in text:
        return []
    if "Tuple" in text or "tuple" in text:
        return ()
    if "Dict" in text or "dict" in text:
        return {}
    if "FileDescription" in text:
        return _DESC
    if "Query" in text:
        return _QUERY
    if "bool" in text:
        return True
    if "bytes" in text:
        return b"\x00\x01payload\xff"
    if "int" in text:
        return 42
    if "float" in text:
        return 1.5
    if "str" in text:
        return "value"
    raise AssertionError(f"no generic example for field type {hint!r}")


# ----------------------------------------------------------------------
# Round trips


def test_registry_covers_every_message_dataclass():
    # Every public dataclass in the messages module is wire-encodable.
    names = {
        name
        for name, obj in vars(m).items()
        if dataclasses.is_dataclass(obj)
        and isinstance(obj, type)
        and not name.startswith("_")
        and name != "MessageStats"  # bookkeeping, never on the wire
    }
    assert names <= set(MESSAGE_TYPES)


@pytest.mark.parametrize("name", sorted(MESSAGE_TYPES))
def test_round_trip_byte_exact(name):
    message = _example(name)
    payload = encode_payload(message, seq=11)
    decoded, seq = decode_payload(payload)
    assert seq == 11
    assert decoded == message
    assert type(decoded) is type(message)
    assert encode_payload(decoded, seq=11) == payload


@pytest.mark.parametrize("name", sorted(MESSAGE_TYPES))
def test_framed_round_trip(name):
    message = _example(name)
    frame = encode_frame(message)
    assert frame_length(frame[:HEADER_BYTES]) == len(frame) - HEADER_BYTES
    decoded, seq, offset = decode_frame(frame)
    assert decoded == message
    assert seq is None
    assert offset == len(frame)


def test_nested_query_tree_survives():
    req = m.SearchRequest(client_id=1, query=_QUERY)
    decoded, _ = decode_payload(encode_payload(req))
    assert decoded.query == _QUERY
    # The tree is rebuilt with real Query classes, not dicts: behaviour
    # (matching) survives the round trip, not just equality.
    assert decoded.query.matches(_DESC) == _QUERY.matches(_DESC)


def test_bytes_payload_survives():
    block = m.BlockReply(ok=True, checksum=bytes(range(256)))
    decoded, _ = decode_payload(encode_payload(block))
    assert decoded.checksum == bytes(range(256))


def test_tuple_fields_keep_tuple_type():
    decoded, _ = decode_payload(encode_payload(_DESC))
    assert decoded.tags == ("rock", "classic")
    assert isinstance(decoded.tags, tuple)


def test_multiple_frames_in_one_buffer():
    data = encode_frame(m.Ack(), seq=0) + encode_frame(
        m.QueryUsers(pattern="abc"), seq=1
    )
    frames = decode_frames(data)
    assert [(type(msg).__name__, seq) for msg, seq in frames] == [
        ("Ack", 0),
        ("QueryUsers", 1),
    ]


def test_decode_frame_incomplete_returns_none():
    frame = encode_frame(m.Ack())
    assert decode_frame(frame[: HEADER_BYTES - 1]) is None
    assert decode_frame(frame[:-1]) is None


def test_payload_is_canonical_json():
    payload = encode_payload(m.Ack(ok=True), seq=3)
    doc = json.loads(payload)
    assert doc == {"v": WIRE_SCHEMA, "seq": 3, "type": "Ack",
                   "fields": {"ok": True}}
    # Canonical form: sorted keys, compact separators — re-dumping the
    # parsed doc the same way reproduces the exact bytes.
    assert json.dumps(
        doc, sort_keys=True, separators=(",", ":")
    ).encode() == payload


# ----------------------------------------------------------------------
# Error paths


def _mangle(mutate):
    """Encode an Ack, apply ``mutate`` to the parsed doc, re-encode."""
    doc = json.loads(encode_payload(m.Ack()))
    mutate(doc)
    return json.dumps(doc).encode()


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.update(v="repro.wire/999"), "unsupported wire schema"),
        (lambda d: d.update(type="NoSuchMessage"), "unknown message type"),
        (lambda d: d["fields"].update(bogus=1), "unknown fields"),
        (lambda d: d["fields"].pop("ok"), "missing fields"),
        (lambda d: d["fields"].update(ok=1), "expected bool"),
        (lambda d: d.update(seq="one"), "seq must be an int"),
        (lambda d: d.pop("type"), "must carry exactly"),
        (lambda d: d.update(extra=True), "must carry exactly"),
    ],
)
def test_malformed_payload_raises(mutate, fragment):
    with pytest.raises(WireError, match=fragment):
        decode_payload(_mangle(mutate))


def test_int_field_rejects_bool():
    payload = _mangle_message(
        m.QuerySources(client_id=1, file_id="f1"),
        lambda d: d["fields"].update(client_id=True),
    )
    with pytest.raises(WireError, match="expected int"):
        decode_payload(payload)


def _mangle_message(message, mutate):
    doc = json.loads(encode_payload(message))
    mutate(doc)
    return json.dumps(doc).encode()


def test_nested_envelope_requires_registered_type():
    payload = _mangle_message(
        m.PublishFiles(client_id=1, files=[_DESC]),
        lambda d: d["fields"]["files"][0].update({"$type": "Ack"}),
    )
    with pytest.raises(WireError, match="Ack"):
        decode_payload(payload)


def test_not_json_raises():
    with pytest.raises(WireError, match="undecodable"):
        decode_payload(b"\xffgarbage")


def test_oversized_frame_rejected():
    header = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(WireError, match="oversized"):
        frame_length(header)


def test_zero_length_frame_rejected():
    with pytest.raises(WireError, match="zero-length"):
        frame_length(struct.pack(">I", 0))


def test_trailing_garbage_rejected_by_decode_frames():
    data = encode_frame(m.Ack()) + b"\x00\x00"
    with pytest.raises(WireError, match="truncated frame"):
        decode_frames(data)


def test_unencodable_object_raises():
    class NotAMessage:
        pass

    with pytest.raises(WireError, match="NotAMessage"):
        encode_payload(NotAMessage())
