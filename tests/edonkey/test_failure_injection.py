"""Failure-injection tests: corrupted uploads in a live network.

eDonkey's per-block MD4 checksums exist exactly for this (Section 2.1:
"corruption detection"); these tests verify the end-to-end behaviour —
corrupt sources are detected, downloads recover via redundancy, and only
fail when every source is corrupt.
"""

import dataclasses

import pytest

from repro.edonkey.client import Client, ClientConfig
from repro.edonkey.messages import FileDescription
from repro.edonkey.network import Network, NetworkConfig, build_network
from repro.edonkey.server import Server
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def make_network(*clients):
    config = NetworkConfig(workload=WorkloadConfig().small())
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    network = Network(generator, config)
    network.add_server(Server(0))
    for client in clients:
        network.add_client(client)
        client.connect(network, 0)
    return network


def the_file():
    return FileDescription(file_id="payload", name="payload", size=5000)


class TestRedundancyRecovers:
    def test_majority_corrupt_still_succeeds(self):
        corrupt = [
            Client(i, f"bad{i}", ClientConfig(corrupts_uploads=True))
            for i in range(1, 4)
        ]
        good = Client(4, "good")
        target = Client(5, "dst")
        for c in corrupt + [good]:
            c.share(the_file())
        network = make_network(*(corrupt + [good, target]))
        assert target.download(network, the_file(), sources=[1, 2, 3, 4])
        assert target.corruptions_detected == 3

    def test_all_corrupt_fails_but_is_detected(self):
        corrupt = [
            Client(i, f"bad{i}", ClientConfig(corrupts_uploads=True))
            for i in range(1, 3)
        ]
        target = Client(5, "dst")
        for c in corrupt:
            c.share(the_file())
        network = make_network(*(corrupt + [target]))
        assert not target.download(network, the_file(), sources=[1, 2])
        assert target.corruptions_detected == 2
        # The corrupt data never entered the cache as a verified block.
        assert "payload" not in target.shared_file_ids()


class TestBuiltNetworkInjection:
    def test_corrupt_fraction_applied(self):
        workload = dataclasses.replace(
            WorkloadConfig().small(),
            num_clients=100,
            num_files=1500,
            days=4,
            mainstream_pool_size=100,
        )
        network = build_network(
            NetworkConfig(workload=workload, corrupt_fraction=0.3), seed=9
        )
        corrupt = sum(
            1 for c in network.clients.values() if c.config.corrupts_uploads
        )
        assert 0.15 * len(network.clients) < corrupt < 0.45 * len(network.clients)

    def test_zero_fraction_default(self):
        workload = dataclasses.replace(
            WorkloadConfig().small(),
            num_clients=40,
            num_files=600,
            days=3,
            mainstream_pool_size=40,
        )
        network = build_network(NetworkConfig(workload=workload), seed=9)
        assert not any(
            c.config.corrupts_uploads for c in network.clients.values()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(corrupt_fraction=1.5)
