"""Regression test: client-metadata lookup must be O(1) per new client.

The crawler used to resolve each newly seen client's profile with a
linear scan over ``generator.profiles`` — O(N) per client, O(N²) per
crawl.  The fix builds a ``client_id -> profile`` dict once; this test
pins that by counting how often the profile list is iterated during a
crawl that discovers well over 100 clients.
"""

import dataclasses

from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.runtime.scale import Scale, workload_config


class CountingList(list):
    """A list that counts how many times it is iterated."""

    def __init__(self, items):
        super().__init__(items)
        self.iterations = 0

    def __iter__(self):
        self.iterations += 1
        return super().__iter__()


def build_counting_network(num_clients: int, days: int, seed: int = 0):
    workload = dataclasses.replace(
        workload_config(Scale.SMALL),
        num_clients=num_clients,
        num_files=max(num_clients * 15, 500),
        days=days,
        mainstream_pool_size=num_clients,
    )
    network = build_network(NetworkConfig(workload=workload), seed=seed)
    network.generator.profiles = CountingList(network.generator.profiles)
    return network


class TestProfileLookupComplexity:
    def test_profile_list_iterations_independent_of_clients_seen(self):
        days = 2
        network = build_counting_network(num_clients=160, days=days)
        crawler = Crawler(network, CrawlerConfig(days=days), seed=0)
        trace = crawler.crawl()

        # The crawl saw far more than 100 clients...
        assert len(crawler.reachable_users) >= 100
        assert len(trace.clients) >= 60
        # ...yet the profile list was only swept a constant number of
        # times: once by the crawler's lookup-table build and once per
        # day by the network's churn loop — never once per client.
        profiles = network.generator.profiles
        assert profiles.iterations <= days + 2, (
            f"profile list iterated {profiles.iterations} times for "
            f"{len(trace.clients)} clients — per-client scans are back"
        )

    def test_lookup_table_still_resolves_correct_metadata(self):
        network = build_counting_network(num_clients=120, days=1)
        crawler = Crawler(network, CrawlerConfig(days=1), seed=0)
        trace = crawler.crawl()
        by_id = {p.meta.client_id: p for p in list(network.generator.profiles)}
        assert trace.clients  # the crawl collected someone
        for client_id, meta in trace.clients.items():
            profile = by_id[client_id]
            assert meta.uid == profile.meta.uid
            assert meta.ip == profile.meta.ip
            assert meta.country == profile.meta.country
            assert meta.asn == profile.meta.asn
            assert meta.nickname == profile.meta.nickname
