"""Tests for session churn in the network substrate."""

import dataclasses

import pytest

from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.messages import BrowseRequest, QueryUsers
from repro.edonkey.network import NetworkConfig, build_network
from repro.workload.config import WorkloadConfig


def churn_network(seed=11, clients=80, days=8, faults=None):
    workload = dataclasses.replace(
        WorkloadConfig().small(),
        num_clients=clients,
        num_files=1200,
        days=days,
        mainstream_pool_size=80,
        online_alpha=2.0,
        online_beta=2.0,  # mean availability 0.5: heavy churn
    )
    kwargs = {} if faults is None else {"faults": faults}
    return build_network(
        NetworkConfig(
            workload=workload,
            session_churn=True,
            firewalled_fraction=0.0,
            **kwargs,
        ),
        seed=seed,
    )


@pytest.fixture(scope="module")
def network():
    net = churn_network()
    net.advance_day()
    net.advance_day()
    return net


class TestOfflineSemantics:
    def test_some_clients_offline(self, network):
        assert network.offline
        assert len(network.offline) < len(network.clients)

    def test_offline_clients_unreachable(self, network):
        offline_id = next(iter(network.offline))
        reply = network.to_client(offline_id, BrowseRequest(requester_id=-1))
        assert reply is None
        assert network.callback_to_client(
            offline_id, BrowseRequest(requester_id=-1)
        ) is None

    def test_offline_clients_unpublished(self, network):
        sharers_offline = [
            cid
            for cid in network.offline
            if network.clients[cid].shared_file_ids()
        ]
        if not sharers_offline:
            pytest.skip("no offline sharers this seed")
        cid = sharers_offline[0]
        client = network.clients[cid]
        server = network.servers[client.server_id]
        assert not server.connected(cid)

    def test_online_clients_still_reachable(self, network):
        online = [
            cid
            for cid, c in network.clients.items()
            if cid not in network.offline and c.config.browseable
        ]
        assert online
        reply = network.to_client(online[0], BrowseRequest(requester_id=-1))
        assert reply is not None

    def test_nickname_queries_miss_offline_users(self, network):
        offline_id = next(iter(network.offline))
        client = network.clients[offline_id]
        server = network.servers[client.server_id]
        reply = server.handle_query_users(
            QueryUsers(pattern=client.nickname.lower()[:3])
        )
        assert offline_id not in {u[0] for u in reply.users}


class TestReconnection:
    def test_clients_come_back(self):
        net = churn_network(seed=12)
        seen_offline = set()
        returned = set()
        for _ in range(8):
            before = set(net.offline)
            net.advance_day()
            seen_offline |= net.offline
            returned |= before - net.offline
        assert seen_offline
        assert returned, "expected some clients to reconnect"

    def test_returning_sharer_republished(self):
        net = churn_network(seed=13)
        for _ in range(8):
            previously_offline = set(net.offline)
            net.advance_day()
            back = [
                cid
                for cid in previously_offline - net.offline
                if net.clients[cid].shared_file_ids()
            ]
            for cid in back:
                client = net.clients[cid]
                server = net.servers[client.server_id]
                assert server.connected(cid)
            if back:
                return
        pytest.skip("no sharer happened to return this seed")


class TestDeterminism:
    def test_same_seed_same_offline_sets(self):
        """Two fresh networks built from the same seed agree on exactly
        which clients are offline, every single day."""
        first = churn_network(seed=21)
        second = churn_network(seed=21)
        for _ in range(6):
            first.advance_day()
            second.advance_day()
            assert first.offline == second.offline
        assert first.offline  # heavy churn: never trivially empty

    def test_different_seeds_diverge(self):
        first = churn_network(seed=21)
        second = churn_network(seed=22)
        histories = [set(), set()]
        for _ in range(6):
            first.advance_day()
            second.advance_day()
            histories[0] |= first.offline
            histories[1] |= second.offline
        assert histories[0] != histories[1]

    def test_fault_downtime_deterministic_alongside_churn(self):
        """The fault layer's transient-downtime stream is independent of
        the session-churn stream: same seed reproduces both sets."""
        from repro.faults import FaultConfig

        faults = FaultConfig(peer_downtime=0.2)
        first = churn_network(seed=23, faults=faults)
        second = churn_network(seed=23, faults=faults)
        for _ in range(4):
            first.advance_day()
            second.advance_day()
            assert first.offline == second.offline
            assert first.faults.flaky_offline == second.faults.flaky_offline

    def test_fault_downtime_leaves_session_churn_unchanged(self):
        """Turning transient peer downtime on must not perturb which
        clients session churn takes offline — the streams are separate."""
        from repro.faults import FaultConfig

        plain = churn_network(seed=24)
        faulted = churn_network(
            seed=24, faults=FaultConfig(peer_downtime=0.2)
        )
        for _ in range(4):
            plain.advance_day()
            faulted.advance_day()
            assert plain.offline == faulted.offline


class TestCrawlWithChurn:
    def test_crawler_sees_gaps(self):
        net = churn_network(seed=14, days=10)
        crawler = Crawler(
            net,
            CrawlerConfig(days=8, browse_budget_start=500, browse_budget_end=500),
            seed=14,
        )
        trace = crawler.crawl()
        assert trace.num_snapshots > 0
        # With mean availability 0.5, most clients have observation gaps.
        gapped = 0
        observed = 0
        for client_id in trace.clients:
            days = trace.observation_days(client_id)
            if len(days) < 2:
                continue
            observed += 1
            if days[-1] - days[0] + 1 > len(days):
                gapped += 1
        assert observed > 0
        assert gapped / observed > 0.3

    def test_extrapolation_fills_churn_gaps(self):
        from repro.trace.extrapolation import ExtrapolationConfig, extrapolate

        net = churn_network(seed=15, days=10)
        crawler = Crawler(
            net,
            CrawlerConfig(days=8, browse_budget_start=500, browse_budget_end=500),
            seed=15,
        )
        trace = crawler.crawl()
        config = ExtrapolationConfig(min_connections=3, min_span_days=4)
        extrapolated = extrapolate(trace, config)
        # Extrapolation adds synthetic snapshots into the gaps.
        assert extrapolated.num_snapshots >= sum(
            len(trace.observation_days(c)) for c in extrapolated.clients
        )
