"""Tests for the live semantic client and its day-loop simulation."""

import dataclasses

import pytest

from repro.edonkey.client import Client, ClientConfig
from repro.edonkey.messages import FileDescription
from repro.edonkey.network import Network, NetworkConfig, build_network
from repro.edonkey.semantic_client import (
    LiveSemanticConfig,
    LiveSemanticSimulation,
    SemanticClient,
    SemanticStats,
)
from repro.edonkey.server import Server
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def desc(file_id="f1", size=1000):
    return FileDescription(file_id=file_id, name=file_id, size=size)


def make_network(*clients):
    config = NetworkConfig(workload=WorkloadConfig().small())
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    network = Network(generator, config)
    network.add_server(Server(0))
    for client in clients:
        network.add_client(client)
        client.connect(network, 0)
    return network


class TestSemanticClient:
    def test_rejects_random_strategy(self):
        with pytest.raises(ValueError, match="random"):
            SemanticClient(1, "nick", strategy="random")

    def test_semantic_hit_skips_server(self):
        source = Client(1, "src")
        source.share(desc())
        requester = SemanticClient(2, "dst", list_size=4)
        network = make_network(source, requester)
        # Warm the list manually: 1 is a known neighbour.
        requester.neighbour_list.record_upload(1)
        assert requester.locate_and_download(network, desc())
        stats = requester.semantic_stats
        assert stats.semantic_hits == 1
        assert stats.server_lookups == 0
        assert stats.downloads_ok == 1

    def test_cold_list_falls_back_to_server(self):
        source = Client(1, "src")
        source.share(desc())
        requester = SemanticClient(2, "dst")
        network = make_network(source, requester)
        assert requester.locate_and_download(network, desc())
        stats = requester.semantic_stats
        assert stats.semantic_hits == 0
        assert stats.server_lookups == 1

    def test_uploader_learned_after_fallback(self):
        source = Client(1, "src")
        source.share(desc())
        requester = SemanticClient(2, "dst")
        network = make_network(source, requester)
        requester.locate_and_download(network, desc())
        assert 1 in requester.neighbour_list.ordered()

    def test_second_request_from_same_community_hits(self):
        source = Client(1, "src")
        source.share(desc("a"))
        source.share(desc("b"))
        requester = SemanticClient(2, "dst")
        network = make_network(source, requester)
        requester.locate_and_download(network, desc("a"))
        requester.locate_and_download(network, desc("b"))
        assert requester.semantic_stats.semantic_hits == 1
        assert requester.semantic_stats.server_lookups == 1

    def test_missing_file_fails(self):
        requester = SemanticClient(2, "dst")
        network = make_network(requester)
        assert not requester.locate_and_download(network, desc("nowhere"))
        assert requester.semantic_stats.downloads_failed == 1

    def test_firewalled_neighbour_skipped_in_probe(self):
        hidden = Client(1, "hidden", ClientConfig(firewalled=True))
        hidden.share(desc())
        open_source = Client(3, "open")
        open_source.share(desc())
        requester = SemanticClient(2, "dst", list_size=4)
        network = make_network(hidden, open_source, requester)
        requester.neighbour_list.record_upload(1)  # firewalled first
        requester.neighbour_list.record_upload(3)
        assert requester.locate_and_download(network, desc())
        # the probe found the reachable neighbour
        assert requester.semantic_stats.semantic_hits == 1

    def test_stats_avoidance(self):
        stats = SemanticStats(lookups=10, semantic_hits=4)
        assert stats.server_avoidance == pytest.approx(0.4)
        assert SemanticStats().server_avoidance == 0.0


class TestLiveSimulation:
    @pytest.fixture(scope="class")
    def live_network(self):
        workload = dataclasses.replace(
            WorkloadConfig().small(),
            num_clients=80,
            num_files=1200,
            days=8,
            mainstream_pool_size=80,
        )
        return build_network(
            NetworkConfig(workload=workload, semantic_clients=True), seed=5
        )

    def test_requires_semantic_clients(self):
        workload = dataclasses.replace(
            WorkloadConfig().small(), num_clients=20, num_files=300,
            days=3, mainstream_pool_size=20,
        )
        plain = build_network(NetworkConfig(workload=workload), seed=1)
        with pytest.raises(ValueError, match="SemanticClient"):
            LiveSemanticSimulation(plain)

    def test_run_produces_day_series(self, live_network):
        simulation = LiveSemanticSimulation(
            live_network,
            LiveSemanticConfig(days=4, requests_per_client_per_day=2, seed=5),
        )
        result = simulation.run()
        assert result.total_lookups > 0
        assert len(result.avoidance_by_day) == 4
        assert (
            result.total_semantic_hits + result.total_server_lookups
            == result.total_lookups
        )
        assert 0.0 <= result.overall_avoidance <= 1.0

    def test_network_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(semantic_list_size=0)

    def test_experiment_wrapper(self):
        from repro.runtime.scale import Scale
        from repro.experiments.live_semantic import run_live_semantic

        result = run_live_semantic(
            scale=Scale.SMALL, days=4, num_clients=60, seed=2
        )
        assert result.metric("lookups") > 0
        assert 0.0 <= result.metric("overall_server_avoidance") <= 1.0
        assert result.metric("peak_day_avoidance") >= result.metric(
            "first_day_avoidance"
        ) - 0.35
