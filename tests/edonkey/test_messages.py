"""Tests for the protocol messages and the query language."""

import pytest

from repro.edonkey.messages import (
    AvailabilityRange,
    BitrateRange,
    FileDescription,
    Keyword,
    MessageStats,
    Not,
    SizeRange,
    query_and,
    query_or,
)

MP3 = FileDescription(
    file_id="f1",
    name="Artist - Great_Song.mp3",
    size=4_000_000,
    kind="audio",
    tags=("rock", "2003"),
    availability=3,
    bitrate=192,
)
MOVIE = FileDescription(
    file_id="f2",
    name="some.movie.DIVX",
    size=700_000_000,
    kind="video",
    availability=1,
)


class TestTokens:
    def test_name_split_on_separators(self):
        tokens = MP3.tokens()
        assert "artist" in tokens
        assert "great" in tokens
        assert "song" in tokens
        assert "mp3" in tokens

    def test_tags_and_kind_included(self):
        tokens = MP3.tokens()
        assert "rock" in tokens
        assert "audio" in tokens


class TestKeyword:
    def test_matches_any_field(self):
        assert Keyword("great").matches(MP3)
        assert not Keyword("great").matches(MOVIE)

    def test_case_insensitive(self):
        assert Keyword("GREAT").matches(MP3)

    def test_kind_field(self):
        assert Keyword("audio", field="kind").matches(MP3)
        assert not Keyword("audio", field="kind").matches(MOVIE)

    def test_tag_field(self):
        assert Keyword("rock", field="tag").matches(MP3)
        assert not Keyword("2003", field="tag").matches(MOVIE)

    def test_name_field(self):
        assert Keyword("artist", field="name").matches(MP3)

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            Keyword("x", field="bogus").matches(MP3)


class TestRanges:
    def test_size_range(self):
        assert SizeRange(min_size=1_000_000, max_size=10_000_000).matches(MP3)
        assert not SizeRange(max_size=10_000_000).matches(MOVIE)
        assert SizeRange(min_size=100_000_000).matches(MOVIE)

    def test_open_bounds(self):
        assert SizeRange().matches(MP3)

    def test_availability(self):
        assert AvailabilityRange(min_avail=2).matches(MP3)
        assert not AvailabilityRange(min_avail=2).matches(MOVIE)
        assert AvailabilityRange(max_avail=1).matches(MOVIE)

    def test_bitrate(self):
        assert BitrateRange(min_rate=128).matches(MP3)
        assert not BitrateRange(min_rate=128).matches(MOVIE)


class TestCombinators:
    def test_and(self):
        query = query_and(Keyword("audio", field="kind"), SizeRange(max_size=10**7))
        assert query.matches(MP3)
        assert not query.matches(MOVIE)

    def test_or(self):
        query = query_or(Keyword("divx"), Keyword("rock", field="tag"))
        assert query.matches(MP3)
        assert query.matches(MOVIE)

    def test_not(self):
        query = Not(Keyword("video", field="kind"))
        assert query.matches(MP3)
        assert not query.matches(MOVIE)

    def test_nested(self):
        # (audio AND NOT small) OR divx
        query = query_or(
            query_and(
                Keyword("audio", field="kind"),
                Not(SizeRange(max_size=1_000_000)),
            ),
            Keyword("divx"),
        )
        assert query.matches(MP3)
        assert query.matches(MOVIE)


class TestMessageStats:
    def test_counts_by_type(self):
        stats = MessageStats()
        stats.count(Keyword("x"))
        stats.count(Keyword("y"))
        stats.count(SizeRange())
        assert stats.sent["Keyword"] == 2
        assert stats.sent["SizeRange"] == 1
        assert stats.total() == 3
