"""Tests for the ed2k block-hashing scheme."""

import pytest

from repro.edonkey.hashing import (
    BLOCK_SIZE,
    block_hashes,
    ed2k_hash,
    ed2k_hash_stream,
    num_blocks,
    root_hash,
    synthetic_file_id,
)
from repro.edonkey.md4 import md4_digest


class TestNumBlocks:
    def test_small_file(self):
        assert num_blocks(1) == 1
        assert num_blocks(BLOCK_SIZE) == 1

    def test_multi_block(self):
        assert num_blocks(BLOCK_SIZE + 1) == 2
        assert num_blocks(3 * BLOCK_SIZE) == 3

    def test_empty(self):
        assert num_blocks(0) == 1

    def test_negative(self):
        with pytest.raises(ValueError):
            num_blocks(-1)

    def test_block_size_is_9_5_mb(self):
        assert BLOCK_SIZE == 9_728_000


class TestBlockHashes:
    def test_single_block(self):
        data = b"hello world"
        assert block_hashes(data) == [md4_digest(data)]

    def test_empty_data(self):
        assert block_hashes(b"") == [md4_digest(b"")]

    def test_multi_block_count(self):
        data = b"\x01" * (BLOCK_SIZE + 10)
        hashes = block_hashes(data)
        assert len(hashes) == 2
        assert hashes[0] == md4_digest(data[:BLOCK_SIZE])
        assert hashes[1] == md4_digest(data[BLOCK_SIZE:])


class TestRootHash:
    def test_single_block_identity(self):
        digest = md4_digest(b"x")
        assert root_hash([digest]) == digest

    def test_multi_block_combines(self):
        d1, d2 = md4_digest(b"a"), md4_digest(b"b")
        assert root_hash([d1, d2]) == md4_digest(d1 + d2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            root_hash([])

    def test_wrong_digest_length_rejected(self):
        with pytest.raises(ValueError):
            root_hash([b"too-short"])


class TestEd2kHash:
    def test_small_file_is_plain_md4(self):
        assert ed2k_hash(b"abc") == md4_digest(b"abc").hex()

    def test_order_sensitivity(self):
        data = b"\x01" * BLOCK_SIZE + b"\x02" * 100
        swapped = b"\x02" * 100 + b"\x01" * BLOCK_SIZE
        assert ed2k_hash(data) != ed2k_hash(swapped)

    def test_stream_matches_oneshot_small(self):
        data = b"streaming test data" * 100
        chunks = [data[i : i + 997] for i in range(0, len(data), 997)]
        assert ed2k_hash_stream(chunks) == ed2k_hash(data)

    def test_stream_matches_oneshot_multiblock(self):
        data = bytes(range(256)) * ((BLOCK_SIZE + 5000) // 256 + 1)
        chunks = [data[i : i + 1_000_003] for i in range(0, len(data), 1_000_003)]
        assert ed2k_hash_stream(chunks) == ed2k_hash(data)

    def test_stream_empty(self):
        assert ed2k_hash_stream([]) == ed2k_hash(b"")


class TestSyntheticId:
    def test_stable(self):
        assert synthetic_file_id("movie:700mb") == synthetic_file_id("movie:700mb")

    def test_distinct(self):
        assert synthetic_file_id("a") != synthetic_file_id("b")

    def test_looks_like_md4_hex(self):
        token = synthetic_file_id("anything")
        assert len(token) == 32
        int(token, 16)  # parses as hex
