"""CrawlerConfig: the browse-budget decay schedule, pinned."""

import pytest

from repro.edonkey.crawler import CrawlerConfig


class TestBudgetDecay:
    def test_linear_decay_pinned(self):
        config = CrawlerConfig(
            days=5, browse_budget_start=100, browse_budget_end=20
        )
        assert [config.budget_on(d) for d in range(5)] == [100, 80, 60, 40, 20]

    def test_endpoints(self):
        config = CrawlerConfig(
            days=8, browse_budget_start=10_000, browse_budget_end=5_000
        )
        assert config.budget_on(0) == 10_000
        assert config.budget_on(7) == 5_000

    def test_single_day_crawl_uses_full_budget(self):
        config = CrawlerConfig(
            days=1, browse_budget_start=123, browse_budget_end=7
        )
        assert config.budget_on(0) == 123

    def test_flat_budget(self):
        config = CrawlerConfig(
            days=4, browse_budget_start=50, browse_budget_end=50
        )
        assert [config.budget_on(d) for d in range(4)] == [50] * 4


class TestValidation:
    def test_growing_budget_rejected(self):
        with pytest.raises(ValueError, match="browse_budget_end"):
            CrawlerConfig(browse_budget_start=100, browse_budget_end=200)

    def test_equal_budgets_allowed(self):
        CrawlerConfig(browse_budget_start=100, browse_budget_end=100)
