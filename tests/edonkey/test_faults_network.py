"""Fault injection threaded through the network, server, and crawler."""

import dataclasses

import pytest

from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.faults import FaultConfig, RetryPolicy
from repro.workload.config import WorkloadConfig


def tiny_network_config(**kwargs):
    workload = dataclasses.replace(
        WorkloadConfig().small(),
        num_clients=60,
        num_files=800,
        days=8,
        mainstream_pool_size=60,
    )
    defaults = dict(num_servers=2, workload=workload)
    defaults.update(kwargs)
    return NetworkConfig(**defaults)


def run_crawl(network_config, crawler_config=None, seed=5, days=4):
    network = build_network(network_config, seed=seed)
    crawler = Crawler(
        network,
        crawler_config
        or CrawlerConfig(days=days, browse_budget_start=500, browse_budget_end=400),
        seed=seed,
    )
    trace = crawler.crawl(days)
    return network, crawler, trace


def snapshot_tuples(trace):
    return [
        (s.day, s.client_id, tuple(sorted(s.file_ids)))
        for s in trace.iter_snapshots()
    ]


class TestNoOpGuarantee:
    def test_disabled_faults_never_consult_injector(self):
        network, _, _ = run_crawl(tiny_network_config())
        assert not network.faults.enabled
        assert network.faults.stats.messages_total == 0
        assert network.faults.stats.faults_injected == 0

    def test_retry_policy_is_inert_on_a_clean_network(self):
        """With every fault knob at zero, turning the retry machinery on
        must not change a single snapshot: nothing fails, so nothing
        retries."""
        plain = run_crawl(tiny_network_config())
        retried = run_crawl(
            tiny_network_config(),
            CrawlerConfig(
                days=4,
                browse_budget_start=500,
                browse_budget_end=400,
                retry=RetryPolicy(max_retries=3),
            ),
        )
        assert snapshot_tuples(plain[2]) == snapshot_tuples(retried[2])
        assert retried[1].stats.browse_retries == 0
        assert retried[1].stats.query_retries == 0


class TestDeterminism:
    FAULTS = FaultConfig(
        loss_rate=0.05, malformed_rate=0.02, peer_downtime=0.1,
        server_crash_day=1,
    )

    def test_same_seed_same_faults_same_everything(self):
        runs = [
            run_crawl(
                tiny_network_config(faults=self.FAULTS),
                CrawlerConfig(
                    days=4,
                    browse_budget_start=500,
                    browse_budget_end=400,
                    retry=RetryPolicy(max_retries=2),
                ),
            )
            for _ in range(2)
        ]
        (_, crawler_a, trace_a), (_, crawler_b, trace_b) = runs
        assert snapshot_tuples(trace_a) == snapshot_tuples(trace_b)
        assert runs[0][0].faults.stats == runs[1][0].faults.stats
        assert crawler_a.stats == crawler_b.stats

    def test_flaky_sets_agree_across_fresh_networks(self):
        config = tiny_network_config(faults=FaultConfig(peer_downtime=0.2))
        first = build_network(config, seed=11)
        second = build_network(config, seed=11)
        for _ in range(3):
            first.advance_day()
            second.advance_day()
            assert first.faults.flaky_offline == second.faults.flaky_offline
        assert first.faults.flaky_offline  # 20% of 60 clients: non-empty


class TestServerCrash:
    def test_crash_reassigns_clients_to_survivor(self):
        faults = FaultConfig(server_crash_day=1, server_downtime_days=2)
        network, _, _ = run_crawl(tiny_network_config(faults=faults), days=2)
        stats = network.faults.stats
        assert stats.server_crashes == 1
        assert stats.clients_reassigned > 0
        survivor = next(sid for sid in network.servers if sid != 0)
        for client in network.clients.values():
            if client.server_id is not None:
                assert client.server_id == survivor

    def test_crashed_server_recovers_on_schedule(self):
        faults = FaultConfig(server_crash_day=1, server_downtime_days=2)
        network, _, _ = run_crawl(tiny_network_config(faults=faults), days=5)
        stats = network.faults.stats
        assert stats.server_crashes == 1
        assert stats.server_recoveries == 1
        assert not network.down_servers

    def test_crash_with_no_survivor_orphans_clients(self):
        faults = FaultConfig(server_crash_day=1, server_downtime_days=0)
        network, _, trace = run_crawl(
            tiny_network_config(num_servers=1, faults=faults), days=3
        )
        assert network.faults.stats.clients_reassigned == 0
        assert all(c.server_id is None for c in network.clients.values())
        # Day 0 browses still happened: the trace is partial, not empty.
        assert trace.num_snapshots > 0


class TestHostileCrawl:
    def test_loss_plus_crash_still_yields_a_valid_trace(self):
        """The acceptance scenario: 5% loss and a mid-crawl server crash
        with retries on — the crawl completes and stays near-complete."""
        baseline = run_crawl(tiny_network_config())
        faults = FaultConfig(loss_rate=0.05, server_crash_day=2)
        network, crawler, trace = run_crawl(
            tiny_network_config(faults=faults),
            CrawlerConfig(
                days=4,
                browse_budget_start=500,
                browse_budget_end=400,
                retry=RetryPolicy(max_retries=3),
            ),
        )
        assert trace.num_snapshots > 0
        assert len(trace.days()) == 4
        report = crawler.degradation_report(
            trace, baseline_snapshots=baseline[2].num_snapshots
        )
        assert 0.8 < report.completeness <= 1.0
        assert 0.9 < report.delivery_rate < 1.0
        assert network.faults.stats.server_crashes == 1

    def test_peer_downtime_counts_unreachable_sends(self):
        faults = FaultConfig(peer_downtime=0.3)
        network, _, trace = run_crawl(tiny_network_config(faults=faults))
        assert network.faults.stats.peer_unreachable > 0
        assert trace.num_snapshots > 0

    def test_malformed_replies_empty_the_browse(self):
        faults = FaultConfig(malformed_rate=1.0)
        network, crawler, trace = run_crawl(tiny_network_config(faults=faults))
        assert network.faults.stats.malformed_replies > 0
        # Every browse that got through was emptied: snapshots carry no files.
        assert all(not s.file_ids for s in trace.iter_snapshots())

    def test_retries_consume_browse_budget(self):
        faults = FaultConfig(loss_rate=0.3)
        _, crawler, _ = run_crawl(
            tiny_network_config(faults=faults),
            CrawlerConfig(
                days=2,
                browse_budget_start=40,
                browse_budget_end=40,
                retry=RetryPolicy(max_retries=3),
            ),
            days=2,
        )
        assert crawler.stats.browse_retries > 0
        # Budget bounds *attempts* (including retries), not clients.
        assert crawler.stats.browse_attempts <= 2 * 40
