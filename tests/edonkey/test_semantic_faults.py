"""Dead-neighbour detection and fault handling in the semantic client."""

import dataclasses

from repro.edonkey.client import Client, ClientConfig
from repro.edonkey.messages import FileDescription
from repro.edonkey.network import Network, NetworkConfig, build_network
from repro.edonkey.semantic_client import SemanticClient
from repro.edonkey.server import Server
from repro.faults import FaultConfig
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def desc(file_id="f1", size=1000):
    return FileDescription(file_id=file_id, name=file_id, size=size)


def make_network(*clients, faults=None):
    config = NetworkConfig(
        workload=WorkloadConfig().small(), faults=faults or FaultConfig()
    )
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    network = Network(generator, config)
    network.add_server(Server(0))
    for client in clients:
        network.add_client(client)
        client.connect(network, 0)
    return network


class TestDeadNeighbourDetection:
    def test_unreachable_neighbour_evicted_after_strikes(self):
        dead = Client(1, "dead", ClientConfig(firewalled=True))
        requester = SemanticClient(2, "dst", list_size=4, dead_after=2)
        network = make_network(dead, requester)
        requester.neighbour_list.record_upload(1)

        requester.locate_and_download(network, desc("x"))  # strike 1
        assert 1 in requester.neighbour_list.ordered()
        requester.locate_and_download(network, desc("y"))  # strike 2: out
        assert 1 not in requester.neighbour_list.ordered()
        assert requester.semantic_stats.neighbours_evicted == 1
        assert requester.semantic_stats.probe_failures == 2

    def test_any_answer_clears_strikes(self):
        source = Client(1, "src")
        requester = SemanticClient(2, "dst", list_size=4, dead_after=2)
        network = make_network(source, requester)
        requester.neighbour_list.record_upload(1)

        network.offline.add(1)
        requester.locate_and_download(network, desc("x"))  # strike 1
        network.offline.discard(1)
        requester.locate_and_download(network, desc("y"))  # answers: reset
        network.offline.add(1)
        requester.locate_and_download(network, desc("z"))  # strike 1 again
        assert 1 in requester.neighbour_list.ordered()
        assert requester.semantic_stats.neighbours_evicted == 0

    def test_detection_off_by_default(self):
        dead = Client(1, "dead", ClientConfig(firewalled=True))
        requester = SemanticClient(2, "dst", list_size=4)
        network = make_network(dead, requester)
        requester.neighbour_list.record_upload(1)
        for name in ("a", "b", "c", "d"):
            requester.locate_and_download(network, desc(name))
        assert 1 in requester.neighbour_list.ordered()
        assert requester.semantic_stats.neighbours_evicted == 0

    def test_lost_probes_count_strikes(self):
        source = Client(1, "src")
        requester = SemanticClient(2, "dst", list_size=4, dead_after=3)
        network = make_network(
            source, requester, faults=FaultConfig(loss_rate=1.0)
        )
        requester.neighbour_list.record_upload(1)
        for name in ("a", "b", "c"):
            requester.locate_and_download(network, desc(name))
        assert 1 not in requester.neighbour_list.ordered()
        assert requester.semantic_stats.neighbours_evicted == 1


class TestOrphanedClient:
    def test_server_fallback_gone_fails_gracefully(self):
        requester = SemanticClient(2, "dst")
        network = make_network(requester)
        requester.server_id = None  # its server crashed, nobody survived
        assert not requester.locate_and_download(network, desc("x"))
        assert requester.semantic_stats.downloads_failed == 1


class TestNetworkWiring:
    def test_build_network_threads_dead_after(self):
        workload = dataclasses.replace(
            WorkloadConfig().small(),
            num_clients=20, num_files=300, days=3, mainstream_pool_size=20,
        )
        network = build_network(
            NetworkConfig(
                workload=workload,
                semantic_clients=True,
                semantic_dead_after=4,
            ),
            seed=1,
        )
        semantic = [
            c for c in network.clients.values()
            if isinstance(c, SemanticClient)
        ]
        assert semantic
        assert all(c.dead_after == 4 for c in semantic)
