"""Tests for multi-server search (TCP + UDP spray) and callbacks."""

import pytest

from repro.edonkey.client import Client
from repro.edonkey.messages import (
    CallbackRequest,
    FileDescription,
    Keyword,
    UdpSearchRequest,
)
from repro.edonkey.network import Network, NetworkConfig
from repro.edonkey.server import Server
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def desc(file_id, name):
    return FileDescription(file_id=file_id, name=name, size=1000)


def make_multi_server_network(num_servers=3):
    config = NetworkConfig(workload=WorkloadConfig().small())
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    network = Network(generator, config)
    for i in range(num_servers):
        network.add_server(Server(i))
    return network


class TestUdpSearch:
    def test_results_from_remote_servers(self):
        network = make_multi_server_network()
        # publisher on server 2, searcher on server 0
        publisher = Client(1, "pub")
        publisher.share(desc("remote-file", "unique keyword song"))
        network.add_client(publisher)
        publisher.connect(network, 2)

        searcher = Client(2, "seek")
        network.add_client(searcher)
        searcher.connect(network, 0)

        local_only = searcher.search(network, Keyword("unique"))
        assert local_only == []
        everywhere = searcher.search_all_servers(network, Keyword("unique"))
        assert [d.file_id for d in everywhere] == ["remote-file"]

    def test_deduplication_across_servers(self):
        network = make_multi_server_network()
        for client_id, server_id in ((1, 0), (2, 1), (3, 2)):
            publisher = Client(client_id, f"pub{client_id}")
            publisher.share(desc("same-file", "dupe keyword"))
            network.add_client(publisher)
            publisher.connect(network, server_id)
        searcher = Client(9, "seek")
        network.add_client(searcher)
        searcher.connect(network, 0)
        results = searcher.search_all_servers(network, Keyword("dupe"))
        assert [d.file_id for d in results] == ["same-file"]

    def test_udp_reply_limit(self):
        network = make_multi_server_network(num_servers=2)
        publisher = Client(1, "pub")
        for i in range(80):
            publisher.share(desc(f"f{i}", "bulk keyword"))
        network.add_client(publisher)
        publisher.connect(network, 1)
        reply = network.to_server(
            1, UdpSearchRequest(client_id=9, query=Keyword("bulk"))
        )
        assert len(reply.results) == 50  # UDP budget
        assert reply.truncated

    def test_search_before_connect(self):
        network = make_multi_server_network()
        client = Client(5, "x")
        network.add_client(client)
        with pytest.raises(RuntimeError):
            client.search(network, Keyword("x"))

    def test_unknown_server_ignored(self):
        network = make_multi_server_network(num_servers=1)
        searcher = Client(2, "seek")
        network.add_client(searcher)
        searcher.connect(network, 0)
        searcher.known_servers.add(99)  # stale server-list entry
        assert searcher.search_all_servers(network, Keyword("whatever")) == []


class TestCallback:
    def test_server_grants_callback_for_session(self):
        network = make_multi_server_network(num_servers=1)
        client = Client(1, "fw")
        network.add_client(client)
        client.connect(network, 0)
        granted = network.to_server(
            0, CallbackRequest(requester_id=9, target_id=1)
        )
        assert granted is True

    def test_server_denies_unknown_target(self):
        network = make_multi_server_network(num_servers=1)
        granted = network.to_server(
            0, CallbackRequest(requester_id=9, target_id=42)
        )
        assert granted is False

    def test_message_stats_count_udp_and_callbacks(self):
        network = make_multi_server_network(num_servers=1)
        network.to_server(0, CallbackRequest(requester_id=1, target_id=2))
        network.to_server(
            0, UdpSearchRequest(client_id=1, query=Keyword("x"))
        )
        assert network.stats.sent["CallbackRequest"] == 1
        assert network.stats.sent["UdpSearchRequest"] == 1
