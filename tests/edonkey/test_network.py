"""Tests for the Network router itself (routing, stats, error paths)."""

import pytest

from repro.edonkey.client import Client
from repro.edonkey.messages import (
    BrowseRequest,
    ConnectRequest,
    FileDescription,
    Keyword,
    PublishFiles,
    SearchRequest,
    ServerListRequest,
)
from repro.edonkey.network import Network, NetworkConfig
from repro.edonkey.server import Server
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


@pytest.fixture()
def network():
    config = NetworkConfig(workload=WorkloadConfig().small())
    generator = SyntheticWorkloadGenerator(config=config.workload, seed=0)
    generator.build()
    net = Network(generator, config)
    net.add_server(Server(0))
    net.add_server(Server(1))
    return net


class TestServerRouting:
    def test_unknown_server_returns_none(self, network):
        reply = network.to_server(99, ServerListRequest())
        assert reply is None

    def test_unroutable_server_message_raises(self, network):
        with pytest.raises(TypeError, match="unroutable"):
            network.to_server(0, object())

    def test_publish_returns_none(self, network):
        network.to_server(
            0, ConnectRequest(client_id=1, nickname="n", firewalled=False)
        )
        reply = network.to_server(
            0,
            PublishFiles(
                client_id=1,
                files=[FileDescription(file_id="f", name="f", size=1)],
            ),
        )
        assert reply is None
        search = network.to_server(
            0, SearchRequest(client_id=2, query=Keyword("f"))
        )
        assert [r.file_id for r in search.results] == ["f"]

    def test_server_list_gossip_on_add(self, network):
        reply = network.to_server(0, ServerListRequest())
        assert reply.servers == [0, 1]


class TestClientRouting:
    def test_unknown_client_returns_none(self, network):
        assert network.to_client(12345, BrowseRequest(requester_id=1)) is None

    def test_unroutable_client_message_raises(self, network):
        client = Client(5, "nick")
        network.add_client(client)
        with pytest.raises(TypeError, match="unroutable"):
            network.to_client(5, object())

    def test_stats_count_every_delivery_attempt(self, network):
        before = network.stats.total()
        network.to_client(777, BrowseRequest(requester_id=1))  # unknown
        network.to_server(0, ServerListRequest())
        assert network.stats.total() == before + 2

    def test_cache_indices_empty_for_unknown(self, network):
        assert network.cache_indices(424242) == set()


class TestSeedInitialCaches:
    def test_publishes_to_servers(self, network):
        # Attach protocol clients for a few sharer profiles and seed.
        sharers = [
            p for p in network.generator.profiles if not p.free_rider
        ][:5]
        for profile in sharers:
            client = Client(profile.meta.client_id, profile.meta.nickname)
            network.add_client(client)
            client.connect(network, 0)
        network.seed_initial_caches()
        published = sum(
            1
            for profile in sharers
            if network.clients[profile.meta.client_id].shared_file_ids()
        )
        assert published > 0
        # the server can resolve sources for a published file
        some_client = next(
            network.clients[p.meta.client_id]
            for p in sharers
            if network.clients[p.meta.client_id].shared_file_ids()
        )
        fid = next(iter(some_client.shared_file_ids()))
        other = Client(99999, "probe")
        network.add_client(other)
        other.connect(network, 0)
        assert some_client.client_id in other.find_sources(network, fid)
