"""MD4 against the RFC 1320 appendix test vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.edonkey.md4 import MD4, md4_digest, md4_hex

#: The official RFC 1320 test suite.
RFC_VECTORS = [
    (b"", "31d6cfe0d16ae931b73c59d7e0c089c0"),
    (b"a", "bde52cb31de33e46245e05fbdbd6fb24"),
    (b"abc", "a448017aaf21d8525fc10ae87aa6729d"),
    (b"message digest", "d9130a8164549fe818874806e1c7014b"),
    (b"abcdefghijklmnopqrstuvwxyz", "d79e1c308aa5bbcdeea8ed63df412da9"),
    (
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
        "043f8582f241db351ce627e153e7f0e4",
    ),
    (
        b"1234567890" * 8,
        "e33b4ddc9c38f2199c3e7b164fcc0536",
    ),
]


class TestRfcVectors:
    @pytest.mark.parametrize("message,expected", RFC_VECTORS)
    def test_vector(self, message, expected):
        assert md4_hex(message) == expected


class TestIncremental:
    def test_chunked_update_matches_oneshot(self):
        message = b"The quick brown fox jumps over the lazy dog" * 13
        one_shot = MD4(message).hexdigest()
        chunked = MD4()
        for i in range(0, len(message), 7):
            chunked.update(message[i : i + 7])
        assert chunked.hexdigest() == one_shot

    @given(st.binary(max_size=400), st.integers(min_value=1, max_value=64))
    def test_any_chunking_matches(self, message, chunk):
        one_shot = MD4(message).digest()
        incremental = MD4()
        for i in range(0, len(message), chunk):
            incremental.update(message[i : i + chunk])
        assert incremental.digest() == one_shot

    def test_digest_does_not_consume_state(self):
        h = MD4(b"abc")
        assert h.digest() == h.digest()
        h.update(b"def")
        assert h.hexdigest() == MD4(b"abcdef").hexdigest()

    def test_copy_is_independent(self):
        h = MD4(b"abc")
        clone = h.copy()
        clone.update(b"xyz")
        assert h.hexdigest() == MD4(b"abc").hexdigest()
        assert clone.hexdigest() == MD4(b"abcxyz").hexdigest()


class TestApi:
    def test_digest_size(self):
        assert len(md4_digest(b"x")) == 16
        assert MD4.digest_size == 16
        assert MD4.block_size == 64

    def test_rejects_text(self):
        with pytest.raises(TypeError):
            MD4().update("not bytes")  # type: ignore[arg-type]

    def test_accepts_bytearray_and_memoryview(self):
        assert MD4(bytearray(b"abc")).hexdigest() == md4_hex(b"abc")
        h = MD4()
        h.update(memoryview(b"abc"))
        assert h.hexdigest() == md4_hex(b"abc")

    def test_block_boundary_lengths(self):
        # Padding edge cases: lengths around the 55/56/64-byte boundaries.
        for n in (54, 55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = bytes(range(256))[:n] * 1
            incremental = MD4()
            incremental.update(data[: n // 2])
            incremental.update(data[n // 2 :])
            assert incremental.digest() == MD4(data).digest(), n
