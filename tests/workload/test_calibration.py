"""Tests for the workload calibration report."""

import pytest

from repro.workload.calibration import (
    CalibrationCheck,
    _check,
    all_passed,
    calibration_report,
    render_report,
)


class TestCheckHelper:
    def test_within_band(self):
        check = _check("x", "1", 0.5, 0.4, 0.6)
        assert check.ok
        assert check.measured == "0.50"

    def test_outside_band(self):
        assert not _check("x", "1", 0.9, 0.4, 0.6).ok

    def test_custom_format(self):
        check = _check("x", "1", 42.123, 0, 100, fmt="{:.0f}")
        assert check.measured == "42"


class TestReport:
    @pytest.fixture(scope="class")
    def checks(self, request):
        small_trace = request.getfixturevalue("small_temporal_trace")
        return calibration_report(small_trace)

    # indirection so a class fixture can use a session fixture
    @pytest.fixture(scope="class")
    def small_temporal_trace(self, request):
        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import SyntheticWorkloadGenerator

        return SyntheticWorkloadGenerator(
            config=WorkloadConfig().small(), seed=7
        ).generate()

    def test_covers_every_target_family(self, checks):
        names = " ".join(c.name for c in checks)
        for keyword in ("free-rider", "zipf", "1MB", "FR", "spread", "common"):
            assert keyword in names

    def test_default_workload_calibrated(self, checks):
        failures = [c.name for c in checks if not c.ok]
        assert not failures, f"calibration drifted: {failures}"

    def test_render_contains_summary(self, checks):
        text = render_report(checks)
        assert "targets within band" in text
        assert "PASS" in text

    def test_all_passed_helper(self):
        good = [CalibrationCheck("a", "1", "1", True)]
        bad = good + [CalibrationCheck("b", "2", "9", False)]
        assert all_passed(good)
        assert not all_passed(bad)


class TestMiscalibration:
    def test_broken_workload_flagged(self):
        """Drastically de-clustered parameters must fail some check."""
        import dataclasses

        from repro.workload.config import WorkloadConfig
        from repro.workload.generator import SyntheticWorkloadGenerator

        config = dataclasses.replace(
            WorkloadConfig().small(),
            free_rider_fraction=0.05,  # nearly everyone shares
            interest_loyalty=0.0,  # no clustering
        )
        trace = SyntheticWorkloadGenerator(config=config, seed=7).generate()
        checks = calibration_report(trace)
        assert not all_passed(checks)
        failing = {c.name for c in checks if not c.ok}
        assert "free-rider fraction (filtered)" in failing
