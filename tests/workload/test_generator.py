"""Tests for the synthetic workload generator."""

import dataclasses
from collections import Counter

import pytest

from repro.util.rng import RngStream
from repro.workload.config import WorkloadConfig
from repro.workload.generator import ShockEvent, SyntheticWorkloadGenerator


class TestShockEvent:
    def test_zero_before_release(self):
        shock = ShockEvent(file_index=0, release_day=10, boost=100, half_life_days=5)
        assert shock.attraction(9) == 0.0

    def test_boost_at_release(self):
        shock = ShockEvent(file_index=0, release_day=10, boost=100, half_life_days=5)
        assert shock.attraction(10) == pytest.approx(100.0)

    def test_half_life(self):
        shock = ShockEvent(file_index=0, release_day=10, boost=100, half_life_days=5)
        assert shock.attraction(15) == pytest.approx(50.0)
        assert shock.attraction(20) == pytest.approx(25.0)


class TestDeterminism:
    def test_same_seed_same_trace(self, small_config):
        a = SyntheticWorkloadGenerator(config=small_config, seed=11).generate()
        b = SyntheticWorkloadGenerator(config=small_config, seed=11).generate()
        assert list(a.iter_snapshots()) == list(b.iter_snapshots())
        assert a.clients == b.clients

    def test_different_seed_different_trace(self, small_config):
        a = SyntheticWorkloadGenerator(config=small_config, seed=1).generate()
        b = SyntheticWorkloadGenerator(config=small_config, seed=2).generate()
        assert list(a.iter_snapshots()) != list(b.iter_snapshots())

    def test_static_deterministic(self, small_config):
        a = SyntheticWorkloadGenerator(config=small_config, seed=3).generate_static()
        b = SyntheticWorkloadGenerator(config=small_config, seed=3).generate_static()
        assert a.caches == b.caches


class TestPopulation:
    def test_free_rider_fraction(self, small_generator, small_config):
        primaries = [p for p in small_generator.profiles if p.alias_of is None]
        fraction = sum(p.free_rider for p in primaries) / len(primaries)
        assert fraction == pytest.approx(small_config.free_rider_fraction, abs=0.12)

    def test_free_riders_have_no_interests(self, small_generator):
        for profile in small_generator.profiles:
            if profile.free_rider:
                assert profile.interests == []
                assert profile.target_cache_size == 0
            else:
                assert profile.interests

    def test_duplicates_share_ip_or_uid(self, small_generator):
        by_id = {p.meta.client_id: p for p in small_generator.profiles}
        aliases = [p for p in small_generator.profiles if p.alias_of is not None]
        assert aliases, "expected some duplicate clients"
        for alias in aliases:
            primary = by_id[alias.alias_of]
            assert (
                alias.meta.ip == primary.meta.ip
                or alias.meta.uid == primary.meta.uid
            )

    def test_country_mix_tracks_figure4(self, small_generator):
        counts = Counter(p.meta.country for p in small_generator.profiles)
        total = sum(counts.values())
        assert counts["FR"] / total == pytest.approx(0.29, abs=0.08)
        assert counts["DE"] / total == pytest.approx(0.28, abs=0.08)

    def test_unique_client_ids(self, small_generator):
        ids = [p.meta.client_id for p in small_generator.profiles]
        assert len(ids) == len(set(ids))


class TestFiles:
    def test_file_count_and_ids(self, small_generator, small_config):
        assert len(small_generator.files) == small_config.num_files
        ids = {f.file_id for f in small_generator.files}
        assert len(ids) == small_config.num_files

    def test_kinds_and_sizes_consistent(self, small_generator):
        from repro.workload.filesizes import SIZE_MODELS

        for meta in small_generator.files[:500]:
            _, _, lo, hi = SIZE_MODELS[meta.kind]
            assert lo <= meta.size <= hi

    def test_birth_days_in_range(self, small_generator, small_config):
        births = small_generator.birth_days
        assert births.min() >= small_config.start_day - 1
        assert births.max() < small_config.end_day

    def test_categories_assigned(self, small_generator, small_config):
        n_cats = small_config.interest_model.num_categories
        for meta in small_generator.files[:500]:
            assert 0 <= meta.category < n_cats


class TestShocks:
    def test_shock_count(self, small_generator, small_config):
        assert len(small_generator.shocks) == small_config.num_shock_files

    def test_shock_birth_equals_release(self, small_generator):
        for shock in small_generator.shocks:
            assert small_generator.birth_days[shock.file_index] == shock.release_day

    def test_releases_staggered_within_trace(self, small_generator, small_config):
        releases = [s.release_day for s in small_generator.shocks]
        assert min(releases) > small_config.start_day
        assert max(releases) < small_config.end_day


class TestTemporalTrace:
    def test_no_file_observed_before_birth(self, small_temporal_trace, small_generator):
        births = {
            meta.file_id: int(day)
            for meta, day in zip(small_generator.files, small_generator.birth_days)
        }
        for day in small_temporal_trace.days():
            for cache in small_temporal_trace.snapshots_on(day).values():
                for fid in cache:
                    assert births[fid] <= day

    def test_free_riders_always_empty(self, small_temporal_trace, small_generator):
        free_riders = {
            p.meta.client_id for p in small_generator.profiles if p.free_rider
        }
        for day in small_temporal_trace.days():
            for client_id, cache in small_temporal_trace.snapshots_on(day).items():
                if client_id in free_riders:
                    assert not cache

    def test_observation_counts_decline(self, small_temporal_trace):
        days = small_temporal_trace.days()
        first_third = days[: len(days) // 3]
        last_third = days[-len(days) // 3 :]
        early = sum(len(small_temporal_trace.observed_clients(d)) for d in first_third)
        late = sum(len(small_temporal_trace.observed_clients(d)) for d in last_third)
        assert late < early

    def test_caches_stay_near_target(self, small_temporal_trace, small_generator):
        targets = {
            p.meta.client_id: p.target_cache_size
            for p in small_generator.profiles
            if not p.free_rider
        }
        last_day = small_temporal_trace.days()[-1]
        for client_id, cache in small_temporal_trace.snapshots_on(last_day).items():
            target = targets.get(client_id)
            if target:
                assert len(cache) <= target


class TestStaticTrace:
    def test_covers_all_clients(self, small_static_trace, small_generator):
        assert set(small_static_trace.caches) == {
            p.meta.client_id for p in small_generator.profiles
        }

    def test_cache_sizes_respect_targets(self, small_static_trace, small_generator):
        for profile in small_generator.profiles:
            cache = small_static_trace.caches[profile.meta.client_id]
            assert len(cache) <= profile.target_cache_size

    def test_interest_clustering_planted(self, small_static_trace, small_generator):
        """Same-interest sharers overlap more than disjoint-interest ones."""
        from repro.trace.model import overlap

        profiles = [
            p
            for p in small_generator.profiles
            if not p.free_rider and p.alias_of is None
        ]
        same, disjoint = [], []
        for i, a in enumerate(profiles):
            for b in profiles[i + 1 :]:
                cache_a = small_static_trace.caches[a.meta.client_id]
                cache_b = small_static_trace.caches[b.meta.client_id]
                if not cache_a or not cache_b:
                    continue
                value = overlap(cache_a, cache_b) / min(len(cache_a), len(cache_b))
                if set(a.interests) & set(b.interests):
                    same.append(value)
                else:
                    disjoint.append(value)
        assert same and disjoint
        assert sum(same) / len(same) > 2 * (sum(disjoint) / len(disjoint))


class TestPublicFacade:
    def test_initial_cache_and_churn(self, small_generator, small_config):
        sharer = next(p for p in small_generator.profiles if not p.free_rider)
        rng = RngStream(99, "facade")
        day = small_config.start_day
        cache = small_generator.initial_cache(sharer, day, rng)
        assert len(cache) <= sharer.target_cache_size
        before = set(cache)
        small_generator.churn_cache(sharer, cache, day + 1, rng)
        assert len(cache) <= sharer.target_cache_size
        assert cache != before or sharer.target_cache_size <= 1

    def test_file_meta_accessor(self, small_generator):
        meta = small_generator.file_meta(0)
        assert meta.file_id == "f0000000"


class TestRatesAndMix:
    def test_zipfish_popularity(self, small_static_trace):
        from repro.util.zipf import fit_zipf_slope

        counts = sorted(
            small_static_trace.replica_counts().values(), reverse=True
        )
        ranks = range(1, len(counts) + 1)
        slope, _ = fit_zipf_slope(list(ranks), counts, skip_head=3)
        assert slope > 0.2

    def test_interest_loyalty_zero_removes_clustering(self, small_config):
        """Ablation: loyalty=0 -> same-interest pairs stop overlapping more."""
        from repro.trace.model import overlap

        config = dataclasses.replace(small_config, interest_loyalty=0.0)
        generator = SyntheticWorkloadGenerator(config=config, seed=7)
        static = generator.generate_static()
        profiles = [p for p in generator.profiles if not p.free_rider]
        same, disjoint = [], []
        for i, a in enumerate(profiles):
            for b in profiles[i + 1 :]:
                cache_a = static.caches[a.meta.client_id]
                cache_b = static.caches[b.meta.client_id]
                if not cache_a or not cache_b:
                    continue
                value = overlap(cache_a, cache_b) / min(len(cache_a), len(cache_b))
                (same if set(a.interests) & set(b.interests) else disjoint).append(
                    value
                )
        mean_same = sum(same) / len(same)
        mean_disjoint = sum(disjoint) / len(disjoint)
        assert mean_same < mean_disjoint * 1.5


class TestArrivals:
    def test_default_everyone_present_from_start(self, small_generator):
        assert all(
            p.join_day == small_generator.config.start_day
            for p in small_generator.profiles
        )

    def test_arrivals_join_mid_trace(self, small_config):
        import dataclasses

        config = dataclasses.replace(small_config, arrival_fraction=0.5)
        generator = SyntheticWorkloadGenerator(config=config, seed=21)
        generator.build()
        arrivals = [
            p for p in generator.profiles if p.join_day > config.start_day
        ]
        assert arrivals
        assert all(
            config.start_day < p.join_day < config.end_day for p in arrivals
        )

    def test_no_snapshots_before_join(self, small_config):
        import dataclasses

        config = dataclasses.replace(small_config, arrival_fraction=0.5)
        generator = SyntheticWorkloadGenerator(config=config, seed=21)
        trace = generator.generate()
        join = {p.meta.client_id: p.join_day for p in generator.profiles}
        for client_id in trace.clients:
            days = trace.observation_days(client_id)
            if days:
                assert days[0] >= join[client_id]

    def test_population_grows_over_trace(self, small_config):
        import dataclasses

        config = dataclasses.replace(
            small_config,
            arrival_fraction=0.6,
            obs_capacity_start=0.8,
            obs_capacity_end=0.8,  # flat crawler capacity isolates arrivals
        )
        trace = SyntheticWorkloadGenerator(config=config, seed=22).generate()
        days = trace.days()
        early = sum(len(trace.observed_clients(d)) for d in days[:3])
        late = sum(len(trace.observed_clients(d)) for d in days[-3:])
        assert late > early


class TestCrawlerOutage:
    def test_outage_days_dent_observations(self, small_config):
        import dataclasses

        with_outage = dataclasses.replace(small_config, outage_days=4)
        trace = SyntheticWorkloadGenerator(config=with_outage, seed=30).generate()
        days = trace.days()
        # Days 2..5 (offsets) sit in the outage window: observation counts
        # there are well below the surrounding days (Figure 2's dip).
        by_day = {d: len(trace.observed_clients(d)) for d in days}
        start = small_config.start_day
        outage_days = [start + o for o in range(2, 6) if start + o in by_day]
        normal_days = [d for d in days if d < start + 2 or d >= start + 6]
        assert outage_days and normal_days
        outage_mean = sum(by_day[d] for d in outage_days) / len(outage_days)
        normal_mean = sum(by_day[d] for d in normal_days) / len(normal_days)
        assert outage_mean < 0.6 * normal_mean


class TestModuleHelpers:
    def test_generate_trace_helper(self, small_config):
        from repro.workload.generator import generate_trace

        trace = generate_trace(config=small_config, seed=7)
        direct = SyntheticWorkloadGenerator(config=small_config, seed=7).generate()
        assert trace.num_snapshots == direct.num_snapshots

    def test_generate_static_trace_helper(self, small_config):
        from repro.workload.generator import generate_static_trace

        static = generate_static_trace(config=small_config, seed=7)
        direct = SyntheticWorkloadGenerator(
            config=small_config, seed=7
        ).generate_static()
        assert static.caches == direct.caches
