"""Tests for the file-kind and size models."""

from collections import Counter

import pytest

from repro.util.rng import RngStream
from repro.workload.filesizes import (
    MB,
    SIZE_MODELS,
    FileKindModel,
    sample_size,
)


class TestSampleSize:
    @pytest.mark.parametrize("kind", sorted(SIZE_MODELS))
    def test_sizes_within_kind_range(self, kind):
        rng = RngStream(0, kind)
        _, _, lo, hi = SIZE_MODELS[kind]
        for _ in range(300):
            size = sample_size(kind, rng)
            assert lo <= size <= hi

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown file kind"):
            sample_size("floppy", RngStream(0))

    def test_audio_is_mp3_sized(self):
        rng = RngStream(1)
        sizes = [sample_size("audio", rng) for _ in range(200)]
        assert all(1 * MB <= s <= 10 * MB for s in sizes)

    def test_video_is_divx_sized(self):
        rng = RngStream(1)
        sizes = [sample_size("video", rng) for _ in range(200)]
        assert all(s >= 600 * MB for s in sizes)


class TestFileKindModel:
    def test_head_skews_to_video(self):
        model = FileKindModel()
        rng = RngStream(2)
        head_kinds = Counter(
            model.sample_kind(0, 10_000, rng) for _ in range(500)
        )
        tail_kinds = Counter(
            model.sample_kind(9_000, 10_000, rng) for _ in range(500)
        )
        assert head_kinds["video"] > tail_kinds["video"] * 3
        assert tail_kinds["audio"] > head_kinds["audio"]

    def test_tail_mix_matches_paper_buckets(self):
        """~40% under 1MB, ~50% in 1-10MB, ~10% above (Figure 6)."""
        model = FileKindModel()
        rng = RngStream(3)
        sizes = [
            model.sample(9_999, 10_000, rng)[1] for _ in range(2000)
        ]
        under_1mb = sum(1 for s in sizes if s < MB) / len(sizes)
        mp3_range = sum(1 for s in sizes if MB <= s <= 10 * MB) / len(sizes)
        assert 0.30 <= under_1mb <= 0.50
        assert 0.40 <= mp3_range <= 0.60

    def test_sample_returns_kind_and_size(self):
        model = FileKindModel()
        kind, size = model.sample(0, 100, RngStream(4))
        assert kind in SIZE_MODELS
        assert size > 0

    def test_rejects_unknown_kind_weights(self):
        with pytest.raises(ValueError, match="unknown kinds"):
            FileKindModel(head_weights={"floppy": 1.0})

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError, match="positive total"):
            FileKindModel(tail_weights={"audio": 0.0})

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            FileKindModel(head_fraction=2.0)

    def test_custom_weights(self):
        model = FileKindModel(
            head_weights={"audio": 1.0}, tail_weights={"audio": 1.0}
        )
        rng = RngStream(5)
        assert model.sample_kind(0, 100, rng) == "audio"
        assert model.sample_kind(99, 100, rng) == "audio"
