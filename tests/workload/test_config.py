"""Tests for workload configuration validation."""

import dataclasses

import pytest

from repro.workload.config import WorkloadConfig


class TestValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_clients", 0),
            ("num_files", 0),
            ("days", 0),
            ("free_rider_fraction", 1.2),
            ("duplicate_fraction", -0.1),
            ("file_alpha", -1.0),
            ("preexisting_fraction", 2.0),
            ("cache_size_median", 0),
            ("cache_size_sigma", 0),
            ("interest_loyalty", 1.5),
            ("mainstream_prob", -0.2),
            ("mainstream_pool_size", 0),
            ("daily_adds_mean", -1.0),
            ("shock_half_life_days", 0),
            ("shock_trend_cap", 1.5),
            ("obs_capacity_start", 1.5),
            ("online_alpha", 0),
            ("outage_days", -1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            dataclasses.replace(WorkloadConfig(), **{field: value})

    def test_shock_files_bounded_by_universe(self):
        with pytest.raises(ValueError, match="num_shock_files"):
            dataclasses.replace(
                WorkloadConfig(),
                num_files=5000,
                mainstream_pool_size=100,
                num_shock_files=6000,
            )

    def test_mainstream_pool_bounded_by_universe(self):
        with pytest.raises(ValueError, match="mainstream_pool_size"):
            dataclasses.replace(WorkloadConfig(), num_files=100)


class TestDerived:
    def test_end_day(self):
        config = WorkloadConfig()
        assert config.end_day == config.start_day + config.days

    def test_small_is_valid_and_smaller(self):
        config = WorkloadConfig()
        small = config.small()
        assert small.num_clients < config.num_clients
        assert small.num_files < config.num_files
        assert small.days < config.days
        # Validation ran on the replaced instance.
        assert small.mainstream_pool_size <= small.num_files
