"""Tests for the geography models."""

from collections import Counter

import pytest

from repro.util.rng import RngStream
from repro.workload.geo import (
    AsInfo,
    CountryModel,
    IpAllocator,
    default_country_model,
)


class TestAsInfo:
    def test_share_validated(self):
        with pytest.raises(ValueError):
            AsInfo(asn=1, name="x", national_share=1.5)


class TestCountryModel:
    def test_requires_countries(self):
        with pytest.raises(ValueError):
            CountryModel(country_weights={})

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            CountryModel(country_weights={"FR": -1.0})

    def test_rejects_oversubscribed_as_table(self):
        with pytest.raises(ValueError):
            CountryModel(
                country_weights={"FR": 1.0},
                as_tables={
                    "FR": [
                        AsInfo(1, "a", 0.7),
                        AsInfo(2, "b", 0.7),
                    ]
                },
            )

    def test_catch_all_created(self):
        model = CountryModel(
            country_weights={"FR": 1.0},
            as_tables={"FR": [AsInfo(1, "a", 0.6)]},
        )
        shares = {a.asn: a.national_share for a in model.as_tables["FR"]}
        assert sum(shares.values()) == pytest.approx(1.0)
        assert len(shares) == 2

    def test_sampling_distribution(self):
        model = CountryModel(country_weights={"FR": 3.0, "DE": 1.0})
        rng = RngStream(0)
        counts = Counter(model.sample_country(rng) for _ in range(4000))
        assert counts["FR"] > 2 * counts["DE"]

    def test_sample_asn_belongs_to_country(self):
        model = default_country_model()
        rng = RngStream(1)
        for _ in range(100):
            asn = model.sample_asn("DE", rng)
            assert asn in {a.asn for a in model.as_tables["DE"]}

    def test_as_name_lookup(self):
        model = default_country_model()
        assert model.as_name(3320) == "Deutsche Telekom AG"
        assert model.as_name(999999) == "AS999999"


class TestDefaultModel:
    def test_paper_country_shares(self):
        model = default_country_model()
        assert model.country_weights["FR"] == pytest.approx(0.29)
        assert model.country_weights["DE"] == pytest.approx(0.28)
        assert model.country_weights["ES"] == pytest.approx(0.16)
        assert model.country_weights["US"] == pytest.approx(0.05)

    def test_paper_as_table(self):
        model = default_country_model()
        de = {a.asn: a for a in model.as_tables["DE"]}
        assert de[3320].national_share == pytest.approx(0.75)
        fr = {a.asn: a for a in model.as_tables["FR"]}
        assert fr[3215].national_share == pytest.approx(0.51)
        assert fr[12322].national_share == pytest.approx(0.24)

    def test_implied_global_shares_match_table2(self):
        """national share x country weight reproduces Table 2's global %."""
        model = default_country_model()
        total = sum(model.country_weights.values())

        def global_share(country, asn):
            table = {a.asn: a for a in model.as_tables[country]}
            return (
                model.country_weights[country] / total
            ) * table[asn].national_share

        assert global_share("DE", 3320) == pytest.approx(0.21, abs=0.01)
        assert global_share("FR", 3215) == pytest.approx(0.15, abs=0.01)
        assert global_share("ES", 3352) == pytest.approx(0.08, abs=0.01)
        assert global_share("FR", 12322) == pytest.approx(0.07, abs=0.01)
        assert global_share("US", 1668) == pytest.approx(0.03, abs=0.01)


class TestIpAllocator:
    def test_unique_addresses(self):
        alloc = IpAllocator()
        addresses = [alloc.allocate(3320) for _ in range(1000)]
        assert len(set(addresses)) == 1000

    def test_same_as_shares_prefix(self):
        alloc = IpAllocator()
        a = alloc.allocate(1)
        b = alloc.allocate(1)
        assert a.rsplit(".", 2)[0] == b.rsplit(".", 2)[0]

    def test_different_as_different_block(self):
        alloc = IpAllocator()
        a = alloc.allocate(1)
        b = alloc.allocate(2)
        assert a.split(".")[:2] != b.split(".")[:2]

    def test_block_overflow_allocates_new_block(self):
        alloc = IpAllocator()
        for _ in range(65537):
            alloc.allocate(7)
        assert len(alloc.blocks_of(7)) == 2

    def test_valid_dotted_quads(self):
        alloc = IpAllocator()
        for _ in range(300):
            parts = alloc.allocate(5).split(".")
            assert len(parts) == 4
            assert all(0 <= int(p) <= 255 for p in parts)
