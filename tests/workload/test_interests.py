"""Tests for the interest-category model."""

from collections import Counter

import numpy as np
import pytest

from repro.util.rng import RngStream
from repro.workload.interests import (
    Category,
    InterestModel,
    InterestUniverse,
    poisson_draw,
)


def build_universe(num_categories=4, files_per_category=10, **kwargs):
    categories = [
        Category(index=i, home_country="FR" if i % 2 == 0 else None, weight=1.0)
        for i in range(num_categories)
    ]
    universe = InterestUniverse(categories, **kwargs)
    n = num_categories * files_per_category
    for file_index in range(n):
        universe.add_file(file_index, file_index % num_categories)
    weights = np.arange(1, n + 1, dtype=float)[::-1]  # file 0 most popular
    universe.finalize(weights)
    return universe


class TestInterestUniverse:
    def test_requires_categories(self):
        with pytest.raises(ValueError):
            InterestUniverse([])

    def test_bad_catalog_fraction(self):
        with pytest.raises(ValueError):
            InterestUniverse([Category(0, None, 1.0)], catalog_fraction=0.0)

    def test_membership(self):
        universe = build_universe()
        assert 0 in universe.files_in(0)
        assert 1 not in universe.files_in(0)
        assert universe.category_sizes()[0] == 10

    def test_sample_respects_membership(self):
        universe = build_universe()
        rng = RngStream(0)
        for _ in range(200):
            idx = universe.sample_file(2, rng)
            assert idx % 4 == 2

    def test_sample_empty_category(self):
        categories = [Category(0, None, 1.0), Category(1, None, 1.0)]
        universe = InterestUniverse(categories)
        universe.add_file(0, 0)
        universe.finalize(np.array([1.0]))
        assert universe.sample_file(1, RngStream(0)) is None

    def test_global_weight_mode_prefers_popular(self):
        universe = build_universe()  # within_alpha=None -> global weights
        rng = RngStream(1)
        draws = Counter(universe.sample_file(0, rng) for _ in range(2000))
        # file 0 (most popular) drawn more than the least popular member 36.
        assert draws[0] > draws.get(36, 0)

    def test_local_zipf_mode(self):
        universe = build_universe(within_alpha=1.5)
        rng = RngStream(2)
        draws = Counter(universe.sample_file(0, rng) for _ in range(2000))
        assert draws[0] > draws.get(36, 0) * 2

    def test_catalog_cut_excludes_tail(self):
        universe = build_universe(catalog_fraction=0.3)
        rng = RngStream(3)
        drawn = {universe.sample_file(0, rng) for _ in range(3000)}
        # Only the top 3 of 10 members are drawable.
        assert drawn <= {0, 4, 8}

    def test_homed_in(self):
        universe = build_universe()
        homed = universe.homed_in("FR")
        assert {c.index for c in homed} == {0, 2}
        assert {c.index for c in universe.international()} == {1, 3}


class TestInterestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterestModel(num_categories=0)
        with pytest.raises(ValueError):
            InterestModel(geo_affinity=1.5)
        with pytest.raises(ValueError):
            InterestModel(mean_extra_interests=-1)
        with pytest.raises(ValueError):
            InterestModel(within_category_alpha=-0.5)
        with pytest.raises(ValueError):
            InterestModel(catalog_fraction=0.0)

    def test_build_universe_counts(self):
        model = InterestModel(num_categories=20, international_fraction=0.5)
        universe = model.build_universe(lambda rng: "FR", RngStream(0))
        assert len(universe.categories) == 20
        n_intl = len(universe.international())
        assert 0 < n_intl < 20

    def test_assign_interests_distinct_and_nonempty(self):
        model = InterestModel(num_categories=20)
        universe = model.build_universe(lambda rng: "FR", RngStream(0))
        rng = RngStream(1)
        for i in range(50):
            picks = model.assign_interests(universe, "FR", rng.child(str(i)))
            assert picks
            assert len(picks) == len(set(picks))

    def test_geo_affinity_biases_home_categories(self):
        model = InterestModel(
            num_categories=40, geo_affinity=1.0, international_fraction=0.0
        )
        # Half the categories homed FR, half DE.
        countries = iter(["FR", "DE"] * 20)
        universe = model.build_universe(lambda rng: next(countries), RngStream(0))
        fr_categories = {c.index for c in universe.homed_in("FR")}
        rng = RngStream(2)
        picks = []
        for i in range(40):
            picks.extend(model.assign_interests(universe, "FR", rng.child(str(i))))
        assert set(picks) <= fr_categories

    def test_no_home_falls_back_to_global(self):
        model = InterestModel(num_categories=10, geo_affinity=1.0)
        universe = model.build_universe(lambda rng: "DE", RngStream(0))
        picks = model.assign_interests(universe, "XX", RngStream(3))
        assert picks  # still gets interests despite no homed categories


class TestPoissonDraw:
    def test_zero_mean(self):
        assert poisson_draw(0.0, RngStream(0)) == 0
        assert poisson_draw(-1.0, RngStream(0)) == 0

    def test_mean_approximation(self):
        rng = RngStream(4)
        draws = [poisson_draw(3.0, rng) for _ in range(3000)]
        assert sum(draws) / len(draws) == pytest.approx(3.0, rel=0.1)

    def test_non_negative_integers(self):
        rng = RngStream(5)
        for _ in range(100):
            value = poisson_draw(1.5, rng)
            assert isinstance(value, int)
            assert value >= 0
