"""The killer acceptance test: kill a crawl at any day, resume, and the
final trace and metrics must be identical to an uninterrupted run's.

The "kill" here is an exception raised from the end-of-day hook — the
checkpoint on disk is the only thing the resumed crawler sees, exactly
as after a SIGKILL (the subprocess variant lives in ``test_chaos.py``).
Equivalence is byte-level on the serialized trace and exact on the
metrics counters/gauges/histograms, at two scales and three kill days
each.
"""

import pytest

from repro.checkpoint import Checkpointer
from repro.checkpoint.chaos import compare_metrics
from repro.edonkey.crawler import CRAWL_CHECKPOINT_KIND, Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.obs import Observer
from repro.runtime import DEFAULT_SEED, Scale, workload_config
from repro.trace.io import dumps_trace

# (scale, crawl days, kill days) — days trimmed so the suite stays fast.
SCENARIOS = {
    "tiny": (Scale.TINY, 6, (0, 2, 4)),
    "small": (Scale.SMALL, 5, (0, 2, 3)),
}

_PARAMS = [
    pytest.param(name, kill_day, id=f"{name}-kill@{kill_day}")
    for name, (_, _, kill_days) in SCENARIOS.items()
    for kill_day in kill_days
]


class SimulatedCrash(Exception):
    """Stands in for SIGKILL: aborts the crawl after a day's checkpoint."""


def build_crawler(scale: Scale, days: int) -> Crawler:
    network = build_network(
        NetworkConfig(workload=workload_config(scale)),
        seed=DEFAULT_SEED,
        obs=Observer(),
    )
    return Crawler(network, CrawlerConfig(days=days), seed=DEFAULT_SEED)


@pytest.fixture(scope="module")
def references(tmp_path_factory):
    """One uninterrupted (but checkpointing) run per scale."""
    refs = {}
    for name, (scale, days, _) in SCENARIOS.items():
        crawler = build_crawler(scale, days)
        store = Checkpointer(tmp_path_factory.mktemp(f"ref-{name}"))
        trace = crawler.crawl(checkpointer=store)
        refs[name] = (dumps_trace(trace), crawler.obs.report())
    return refs


@pytest.mark.parametrize("name, kill_day", _PARAMS)
def test_killed_and_resumed_run_is_byte_identical(
    name, kill_day, references, tmp_path
):
    scale, days, _ = SCENARIOS[name]
    ref_trace, ref_metrics = references[name]
    store = Checkpointer(tmp_path / "ckpt")

    crawler = build_crawler(scale, days)

    def crash(day_offset: int) -> None:
        if day_offset == kill_day:
            raise SimulatedCrash

    with pytest.raises(SimulatedCrash):
        crawler.crawl(checkpointer=store, on_day_end=crash)
    # The dead run wrote one checkpoint per completed day.
    assert len(store.list(CRAWL_CHECKPOINT_KIND)) == kill_day + 1

    resumed = Crawler.resume_from(store)
    assert resumed is not crawler  # a fresh object graph from disk
    assert resumed.next_day_offset == kill_day + 1
    trace = resumed.crawl(checkpointer=store)

    assert dumps_trace(trace) == ref_trace
    assert compare_metrics(ref_metrics, resumed.obs.report()) == []
    assert resumed.network.check_invariants() == []


def test_resume_after_every_day_of_a_run(tmp_path):
    """Crash after *every* day in sequence — the worst uptime imaginable
    (one day of progress per process) still converges to the reference."""
    scale, days, _ = SCENARIOS["tiny"]
    reference = build_crawler(scale, days)
    ref_trace = dumps_trace(
        reference.crawl(checkpointer=Checkpointer(tmp_path / "ref"))
    )

    store = Checkpointer(tmp_path / "ckpt")
    crawler = build_crawler(scale, days)

    def crash_immediately(day_offset: int) -> None:
        raise SimulatedCrash

    for expected_progress in range(1, days + 1):
        with pytest.raises(SimulatedCrash):
            crawler.crawl(checkpointer=store, on_day_end=crash_immediately)
        crawler = Crawler.resume_from(store)
        assert crawler.next_day_offset == expected_progress
    # Every day is done; the last resume just assembles the final trace.
    trace = crawler.crawl(checkpointer=store)
    assert dumps_trace(trace) == ref_trace


def test_resume_from_mid_run_checkpoint_reruns_only_the_tail(tmp_path):
    scale, days, _ = SCENARIOS["tiny"]
    store = Checkpointer(tmp_path / "ckpt")
    crawler = build_crawler(scale, days)
    crawler.crawl(checkpointer=store)

    resumed = Crawler.resume_from(store)
    assert resumed.next_day_offset == days
    # Nothing left to do: the resumed crawl immediately returns the
    # completed trace without advancing the network.
    trace = resumed.crawl()
    assert trace.num_snapshots > 0


def test_checkpoint_meta_describes_progress(tmp_path):
    scale, days, _ = SCENARIOS["tiny"]
    store = Checkpointer(tmp_path / "ckpt")
    crawler = build_crawler(scale, days)
    crawler.crawl(checkpointer=store)
    infos = [store.inspect(p) for p in store.list(CRAWL_CHECKPOINT_KIND)]
    assert [info.step for info in infos] == list(range(1, days + 1))
    assert all(info.seed == DEFAULT_SEED for info in infos)
    assert infos[-1].meta["day"] == days
