"""Chaos harness: real SIGKILLs against the real CLI, plus the CLI's
resume guard rails (flag validation and mismatch detection)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.checkpoint import ChaosRunner, ChaosSpec
from repro.checkpoint.chaos import compare_metrics
from repro.obs import Observer, RunMetrics


def _cli(*args):
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )


class TestChaosSpec:
    def test_needs_at_least_two_days(self):
        with pytest.raises(ValueError, match="days"):
            ChaosSpec(days=1)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ChaosSpec(loss_rate=1.5)

    def test_kill_days_never_include_the_last_day(self):
        spec = ChaosSpec(days=4, kills=10, seed=3)
        days = ChaosRunner(spec, "unused").draw_kill_days()
        assert days == [0, 1, 2]  # capped at days-1 candidates

    def test_kill_days_are_seeded(self):
        spec = ChaosSpec(days=8, kills=3, seed=3)
        a = ChaosRunner(spec, "unused").draw_kill_days()
        b = ChaosRunner(spec, "unused").draw_kill_days()
        assert a == b
        assert a == sorted(set(a))


class TestCompareMetrics:
    def test_equal_metrics_no_differences(self):
        a = RunMetrics(counters={"x": 1.0}, gauges={}, histograms={})
        b = RunMetrics(counters={"x": 1.0}, gauges={}, histograms={})
        assert compare_metrics(a, b) == []

    def test_differences_are_described(self):
        a = RunMetrics(counters={"x": 1.0}, gauges={}, histograms={})
        b = RunMetrics(counters={"x": 2.0, "y": 1.0}, gauges={}, histograms={})
        diffs = compare_metrics(a, b)
        assert any("'x'" in d for d in diffs)
        assert any("only in candidate" in d for d in diffs)

    def test_span_timings_excluded(self):
        a = RunMetrics(counters={}, gauges={}, histograms={}, spans={"s": 1})
        b = RunMetrics(counters={}, gauges={}, histograms={}, spans={"s": 2})
        assert compare_metrics(a, b) == []


class TestChaosCampaign:
    def test_sigkilled_crawl_resumes_byte_identical(self, tmp_path):
        obs = Observer()
        spec = ChaosSpec(clients=40, days=4, seed=11, kills=1)
        report = ChaosRunner(spec, tmp_path, obs=obs).run(trials=1)
        trial = report.trials[0]
        assert trial.killed_ok, "the subprocess was never actually killed"
        assert trial.trace_identical
        assert trial.metrics_equal, trial.metrics_differences
        assert trial.invariant_problems == []
        assert report.passed
        assert obs.counters["chaos/kills"] == 1
        assert report.as_lineage()["kill_days"] == [trial.kill_days]
        assert "equivalent" in report.render()


class TestCliResumeGuards:
    def test_resume_requires_checkpoint_dir(self):
        proc = _cli("crawl", "--clients", "20", "--days", "2", "--resume")
        assert proc.returncode == 2
        assert "--checkpoint-dir" in proc.stderr

    def test_kill_after_day_requires_checkpoint_dir(self):
        proc = _cli(
            "crawl", "--clients", "20", "--days", "2", "--kill-after-day", "0"
        )
        assert proc.returncode == 2
        assert "--checkpoint-dir" in proc.stderr

    def test_resume_with_no_checkpoints_fails(self, tmp_path):
        proc = _cli(
            "crawl",
            "--clients",
            "20",
            "--days",
            "2",
            "--checkpoint-dir",
            str(tmp_path / "empty"),
            "--resume",
        )
        assert proc.returncode == 2
        assert "no intact" in proc.stderr

    def test_resume_refuses_mismatched_flags(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        base = ["crawl", "--clients", "20", "--days", "2", "--seed", "5"]
        first = _cli(*base, "--checkpoint-dir", ckpt)
        assert first.returncode == 0
        mismatched = _cli(
            "crawl",
            "--clients",
            "20",
            "--days",
            "2",
            "--seed",
            "6",
            "--checkpoint-dir",
            ckpt,
            "--resume",
        )
        assert mismatched.returncode == 2
        assert "seed" in mismatched.stderr

    def test_resume_warns_when_initial_run_was_unobserved(self, tmp_path):
        # Observability state lives in the checkpoint: asking the
        # *resumed* leg for metrics cannot recover days the unobserved
        # first leg already crawled, so the CLI says so.
        ckpt = str(tmp_path / "ckpt")
        base = ["crawl", "--clients", "20", "--days", "2"]
        assert _cli(*base, "--checkpoint-dir", ckpt).returncode == 0
        resumed = _cli(
            *base,
            "--checkpoint-dir",
            ckpt,
            "--resume",
            "--metrics-out",
            str(tmp_path / "metrics.json"),
        )
        assert resumed.returncode == 0
        assert "was not observed" in resumed.stderr

    def test_resume_rejects_fault_schedule_flag(self, tmp_path):
        proc = _cli(
            "crawl",
            "--checkpoint-dir",
            str(tmp_path / "ckpt"),
            "--resume",
            "--fault-schedule",
            "whatever.json",
        )
        assert proc.returncode == 2
        assert "restored from the checkpoint" in proc.stderr
