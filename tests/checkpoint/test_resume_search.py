"""Search-simulation resume: interrupt mid-run, resume, identical result.

The search loop checkpoints every ``checkpoint_every`` processed
requests (between requests — never mid-event), so the test interrupts by
capturing a checkpoint and rebuilding the simulator from disk.  The
resumed run must produce hit rates, load, evictions and exchange counts
identical to an uninterrupted run with the same seed.
"""

import pytest

from repro.checkpoint import Checkpointer
from repro.core.search import (
    SEARCH_CHECKPOINT_KIND,
    SearchConfig,
    SearchSimulator,
    simulate_search,
)
from repro.runtime.cache import SHARED_TRACE_CACHE
from repro.runtime.scale import DEFAULT_SEED, Scale


@pytest.fixture(scope="module")
def static_trace():
    return SHARED_TRACE_CACHE.static(Scale.TINY, DEFAULT_SEED)


def _rates(acc):
    if acc is None:
        return None
    return (
        acc.requests,
        acc.hits,
        acc.one_hop_hits,
        acc.two_hop_hits,
        acc.contributions,
    )


def _result_fingerprint(result):
    """Everything a SimulationResult asserts on, as comparable data."""
    return (
        _rates(result.rates),
        dict(result.load.messages) if result.load else None,
        result.unresolvable,
        result.probes_lost,
        result.evictions,
        _rates(result.rare_rates),
        result.exchanges,
    )


CONFIGS = {
    "plain-lru": SearchConfig(list_size=10, seed=DEFAULT_SEED),
    "churny-lossy": SearchConfig(
        list_size=10,
        availability=0.8,
        probe_loss_rate=0.1,
        evict_dead=True,
        seed=DEFAULT_SEED,
    ),
    "weighted-history": SearchConfig(
        list_size=10,
        strategy="history",
        weighted_requests=True,
        seed=DEFAULT_SEED,
    ),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_resumed_run_matches_uninterrupted(name, static_trace, tmp_path):
    config = CONFIGS[name]
    reference = simulate_search(static_trace, config)

    # Interrupted variant: checkpoint every 500 requests, abandon the
    # simulator mid-run after a few checkpoints, resume from disk.
    store = Checkpointer(tmp_path / "ckpt")
    victim = SearchSimulator(static_trace, config)
    victim.run(checkpointer=store, checkpoint_every=500)
    saves = store.list(SEARCH_CHECKPOINT_KIND)
    assert len(saves) >= 2, "workload too small to checkpoint mid-run"

    # Roll back to an *early* snapshot by deleting the later ones — the
    # resumed simulator must replay the tail identically.
    for path in saves[1:]:
        path.unlink()
    resumed = SearchSimulator.resume_from(store)
    assert resumed is not victim
    result = resumed.run()

    assert _result_fingerprint(result) == _result_fingerprint(reference)


def test_resume_mid_run_state_is_from_disk(static_trace, tmp_path):
    config = CONFIGS["plain-lru"]
    store = Checkpointer(tmp_path / "ckpt")
    simulator = SearchSimulator(static_trace, config)
    simulator.run(checkpointer=store, checkpoint_every=500)

    resumed = SearchSimulator.resume_from(store)
    _, info = store.load_latest(SEARCH_CHECKPOINT_KIND)
    assert info.meta["processed"] == info.step
    assert resumed._run_state.processed == info.step


def test_checkpointing_requires_compiled_engine(static_trace, tmp_path):
    simulator = SearchSimulator(
        static_trace, CONFIGS["plain-lru"], use_compiled=False
    )
    with pytest.raises(ValueError, match="compiled"):
        simulator.run(checkpointer=Checkpointer(tmp_path / "ckpt"))


def test_checkpoint_every_must_be_positive(static_trace, tmp_path):
    simulator = SearchSimulator(static_trace, CONFIGS["plain-lru"])
    with pytest.raises(ValueError):
        simulator.run(
            checkpointer=Checkpointer(tmp_path / "ckpt"), checkpoint_every=0
        )


def test_checkpointing_run_equals_plain_run(static_trace, tmp_path):
    """Checkpointing must not perturb the simulation it snapshots."""
    config = CONFIGS["churny-lossy"]
    plain = simulate_search(static_trace, config)
    store = Checkpointer(tmp_path / "ckpt")
    checkpointed = SearchSimulator(static_trace, config).run(
        checkpointer=store, checkpoint_every=500
    )
    assert _result_fingerprint(checkpointed) == _result_fingerprint(plain)
