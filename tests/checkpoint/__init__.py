"""Checkpoint/resume and chaos-harness tests."""
