"""Checkpointer file format, atomicity, and corruption handling."""

import json
import pickle

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    Checkpointer,
)


@pytest.fixture()
def store(tmp_path):
    return Checkpointer(tmp_path / "ckpt")


class TestSaveLoad:
    def test_round_trip(self, store):
        payload = {"numbers": [1, 2, 3], "nested": {"a": (4, 5)}}
        path = store.save("crawl", 3, payload, seed=42, meta={"day": 3})
        loaded, info = store.load(path)
        assert loaded == payload
        assert info.kind == "crawl"
        assert info.step == 3
        assert info.seed == 42
        assert info.meta == {"day": 3}

    def test_filename_orders_by_step(self, store):
        for step in (3, 11, 7):
            store.save("crawl", step, {"step": step}, seed=0)
        steps = [store.inspect(p).step for p in store.list("crawl")]
        assert steps == [3, 7, 11]

    def test_header_is_one_json_line(self, store):
        path = store.save("crawl", 1, {"x": 1}, seed=9)
        with open(path, "rb") as fh:
            header = json.loads(fh.readline().decode("utf-8"))
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["payload_bytes"] > 0
        assert len(header["payload_sha256"]) == 64

    def test_inspect_does_not_unpickle(self, store):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("must not unpickle during inspect")

        path = store.save("crawl", 1, {"x": 1}, seed=0)
        # Replace the payload with bytes that would explode if unpickled;
        # keep the header as-is.  inspect() must still succeed.
        with open(path, "rb") as fh:
            header_line = fh.readline()
        with open(path, "wb") as fh:
            fh.write(header_line)
            fh.write(b"\x80\x04not a pickle")
        info = store.inspect(path)
        assert info.kind == "crawl"

    def test_resave_replaces(self, store):
        store.save("crawl", 1, {"version": "old"}, seed=0)
        store.save("crawl", 1, {"version": "new"}, seed=0)
        assert len(store.list("crawl")) == 1
        loaded, _ = store.load_latest("crawl")
        assert loaded == {"version": "new"}


class TestValidation:
    @pytest.mark.parametrize("kind", ["", "with-dash", "with/slash"])
    def test_bad_kind_rejected(self, store, kind):
        with pytest.raises(ValueError):
            store.save(kind, 0, {}, seed=0)

    def test_negative_step_rejected(self, store):
        with pytest.raises(ValueError):
            store.save("crawl", -1, {}, seed=0)

    def test_load_missing_file(self, store, tmp_path):
        with pytest.raises(CheckpointError):
            store.load(tmp_path / "ckpt" / "crawl-00000099.ckpt")

    def test_wrong_schema_rejected(self, store, tmp_path):
        path = tmp_path / "ckpt" / "crawl-00000001.ckpt"
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps({})
        header = {"schema": "repro.checkpoint/999", "kind": "crawl"}
        path.write_bytes(json.dumps(header).encode() + b"\n" + blob)
        with pytest.raises(CheckpointError, match="schema"):
            store.inspect(path)


class TestCorruption:
    def _corrupt_payload(self, path):
        data = path.read_bytes()
        path.write_bytes(data[:-4] + b"XXXX")

    def test_truncated_payload_detected(self, store):
        path = store.save("crawl", 1, {"x": list(range(100))}, seed=0)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(CheckpointError, match="truncated"):
            store.load(path)

    def test_flipped_bytes_detected(self, store):
        path = store.save("crawl", 1, {"x": list(range(100))}, seed=0)
        self._corrupt_payload(path)
        with pytest.raises(CheckpointError, match="checksum"):
            store.load(path)

    def test_latest_skips_garbage_header(self, store):
        good = store.save("crawl", 1, {"x": 1}, seed=0)
        bad = store.save("crawl", 2, {"x": 2}, seed=0)
        bad.write_bytes(b"not a checkpoint at all")
        assert store.latest("crawl") == good

    def test_load_latest_falls_back_past_corrupt_payload(self, store):
        store.save("crawl", 1, {"step": 1}, seed=0)
        newest = store.save("crawl", 2, {"step": 2}, seed=0)
        self._corrupt_payload(newest)
        loaded, info = store.load_latest("crawl")
        assert loaded == {"step": 1}
        assert info.step == 1

    def test_load_latest_raises_when_nothing_intact(self, store):
        path = store.save("crawl", 1, {"x": 1}, seed=0)
        self._corrupt_payload(path)
        with pytest.raises(CheckpointError, match="no intact"):
            store.load_latest("crawl")

    def test_load_latest_empty_directory(self, store):
        with pytest.raises(CheckpointError, match="no intact"):
            store.load_latest("crawl")


class TestListing:
    def test_list_filters_by_kind(self, store):
        store.save("crawl", 1, {}, seed=0)
        store.save("search", 500, {}, seed=0)
        assert len(store.list()) == 2
        assert len(store.list("crawl")) == 1
        assert len(store.list("search")) == 1

    def test_list_on_missing_directory(self, tmp_path):
        assert Checkpointer(tmp_path / "nope").list() == []
