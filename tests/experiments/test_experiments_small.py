"""Integration tests: every experiment runs at SMALL scale and reproduces
the paper's qualitative shape (the quantitative reproduction runs at
DEFAULT scale in ``benchmarks/``).

SMALL scale has only ~80 sharers, so assertions here are the *robust*
orderings: who beats whom, what rises, what falls.  Thresholds are loose by
design — these tests guard against sign errors, not calibration drift.
"""

import pytest

from repro import experiments as E
from repro.experiments import Scale
from repro.runtime.cache import SHARED_TRACE_CACHE

SCALE = Scale.SMALL


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    """Generate the shared traces once for the whole module."""
    SHARED_TRACE_CACHE.temporal(SCALE)
    SHARED_TRACE_CACHE.filtered(SCALE)
    SHARED_TRACE_CACHE.extrapolated(SCALE)
    SHARED_TRACE_CACHE.static(SCALE)


class TestTable1:
    def test_pipeline_shrinks_monotonically(self):
        result = E.run_table1(scale=SCALE)
        assert (
            result.metric("full_clients")
            >= result.metric("filtered_clients")
            >= result.metric("extrapolated_clients")
        )

    def test_free_riding_dominates(self):
        result = E.run_table1(scale=SCALE)
        assert 0.6 < result.metric("full_free_rider_fraction") < 0.9


class TestFigure1:
    def test_crawler_decline(self):
        result = E.run_figure01(scale=SCALE)
        assert result.metric("decline_ratio") < 0.9


class TestFigure2:
    def test_discovery_continues(self):
        result = E.run_figure02(scale=SCALE)
        assert result.metric("new_files_last_day") > 0
        assert result.metric("total_files") > 0


class TestFigure3:
    def test_extrapolated_days_populated(self):
        result = E.run_figure03(scale=SCALE)
        assert result.metric("min_daily_files") > 0
        assert result.metric("min_daily_non_empty_caches") > 0


class TestFigure4:
    def test_country_mix(self):
        result = E.run_figure04(scale=SCALE)
        assert result.metric("share_FR") == pytest.approx(0.29, abs=0.08)
        assert result.metric("share_DE") == pytest.approx(0.28, abs=0.08)
        assert result.metric("share_FR") > result.metric("share_US")


class TestFigure5:
    def test_zipf_like(self):
        result = E.run_figure05(scale=SCALE)
        assert result.metric("mean_zipf_slope") > 0.2
        assert result.metric("days_plotted") >= 3


class TestFigure6:
    def test_popular_files_are_large(self):
        result = E.run_figure06(scale=SCALE)
        assert result.metric("p1_under_1mb") > 0.2
        assert result.metric("p5_over_600mb") > result.metric("p1_over_600mb")


class TestFigure7:
    def test_contribution_shape(self):
        result = E.run_figure07(scale=SCALE)
        assert result.metric("free_rider_fraction") > 0.6
        assert result.metric("sharers_under_100_files") > 0.5
        assert result.metric("top15pct_share_of_files") > 0.4


class TestFigure8:
    def test_spread_small_and_shaped(self):
        result = E.run_figure08(scale=SCALE)
        assert result.metric("max_spread_fraction_any_file") < 0.3
        assert result.metric("max_spread_pct") > 0


class TestFigure910:
    def test_runs(self):
        result = E.run_figure09_10(scale=SCALE)
        assert result.metric("early_top5_mean_final_rank") >= 1
        assert len(result.series) == 10


class TestTable2:
    def test_as_concentration(self):
        result = E.run_table2(scale=SCALE)
        assert result.metric("top5_concentration") > 0.4
        assert result.metric("as3320_global") == pytest.approx(0.21, abs=0.08)


class TestFigures1112:
    def test_rare_files_more_home_concentrated(self):
        for runner in (E.run_figure11, E.run_figure12):
            result = runner(scale=SCALE)
            rare = result.metrics.get("median_home_pct_p0.1")
            popular = result.metrics.get("median_home_pct_p1.2") or result.metrics.get(
                "median_home_pct_p0.6"
            )
            if rare is None or popular is None:
                pytest.skip("not enough files per popularity class")
            assert rare >= popular


class TestFigure13:
    def test_correlation_rises_with_overlap(self):
        result = E.run_figure13(scale=SCALE)
        assert result.metric("all_p_at_5") > result.metric("all_p_at_1")
        assert result.metric("all_p_at_1") > 10.0


class TestFigure14:
    def test_randomization_destroys_rare_clustering(self):
        result = E.run_figure14(scale=SCALE)
        # For low-popularity files the real trace clusters far more than
        # the generosity/popularity-preserving randomization.
        assert result.metric("pop3_trace_p1") > result.metric("pop3_random_p1")
        assert result.metric("pop5_trace_p1") > result.metric("pop5_random_p1")
        # Over all files the two are close (popular files mask interests).
        all_gap = abs(
            result.metric("all_trace_p1") - result.metric("all_random_p1")
        )
        assert all_gap < 20.0


class TestFigure1517:
    def test_high_overlap_persists_longer(self):
        result = E.run_figure15_17(scale=SCALE)
        high = result.metrics.get("high_overlap_mean_retention")
        low = result.metrics.get("low_overlap_mean_retention")
        if high is None or low is None:
            pytest.skip("not enough pairs at this scale")
        assert high > 0.3


class TestFigure18:
    def test_semantic_beats_random(self):
        result = E.run_figure18(scale=SCALE, list_sizes=(5, 20))
        lru = result.series_named("LRU")
        rnd = result.series_named("Random")
        assert lru.y_at(5) > rnd.y_at(5) * 1.5
        assert lru.y_at(20) > lru.y_at(5)

    def test_history_competitive_with_lru(self):
        result = E.run_figure18(scale=SCALE, list_sizes=(5, 20))
        history = result.series_named("History")
        lru = result.series_named("LRU")
        assert history.y_at(20) > 0.8 * lru.y_at(20)


class TestFigure19:
    def test_removing_uploaders_lowers_hits_but_not_to_zero(self):
        result = E.run_figure19(scale=SCALE, list_sizes=(5, 20))
        assert result.metric("minus15@20") < result.metric("all@20")
        assert result.metric("minus15@20") > 0.05


class TestFigure20:
    def test_removing_popular_files_raises_short_list_hits(self):
        result = E.run_figure20(
            scale=SCALE, list_sizes=(5, 20), fractions=(0.05, 0.15)
        )
        base = result.series_named("all files")
        ablated = result.series_named("without 15% popular")
        assert ablated.y_at(5) > base.y_at(5)


class TestTable3:
    def test_opposite_effects(self):
        result = E.run_table3(scale=SCALE, list_sizes=(5, 20))
        base = result.metric("base@5")
        assert result.metric("no_top_15_uploaders@5") < base
        assert result.metric("no_15_popular_files@5") > base


class TestFigure21:
    def test_randomization_lowers_hit_rate(self):
        result = E.run_figure21(scale=SCALE, num_checkpoints=3)
        assert (
            result.metric("hit_rate_fully_randomized")
            < result.metric("hit_rate_original")
        )
        assert result.metric("semantic_share") > 0.05

    def test_monotone_trend(self):
        result = E.run_figure21(scale=SCALE, num_checkpoints=3)
        series = result.series[0]
        assert series.ys[-1] < series.ys[0]


class TestFigure22:
    def test_removing_uploaders_flattens_load(self):
        result = E.run_figure22(scale=SCALE, fractions=(0.0, 0.10))
        max_drop = result.metric("max_load_all") / max(
            result.metric("max_load_minus10"), 1.0
        )
        mean_drop = result.metric("mean_load_all") / max(
            result.metric("mean_load_minus10"), 1e-9
        )
        assert max_drop > mean_drop

    def test_load_series_sorted(self):
        result = E.run_figure22(scale=SCALE, fractions=(0.0,))
        ys = result.series[0].ys
        assert ys == sorted(ys, reverse=True)


class TestFigure23:
    def test_two_hop_beats_one_hop(self):
        result = E.run_figure23(
            scale=SCALE, list_sizes=(5, 20), uploader_fractions=(0.05,)
        )
        assert result.metric("two_hop@20") > result.metric("one_hop@20")
        assert result.metric("two_hop@5") > 0.1


class TestBaselines:
    def test_flooding_estimate(self):
        result = E.run_flooding_estimate(scale=SCALE)
        assert result.metric("max_spread") < 0.3
        assert result.metric("analytic_contacts") > 1
        assert result.metric("flooding_hit_rate") > 0.8

    def test_render_all(self):
        """Every experiment renders without crashing."""
        for runner in (
            E.run_table1,
            E.run_figure04,
            E.run_figure18,
        ):
            text = runner(scale=SCALE).render()
            assert "===" in text
