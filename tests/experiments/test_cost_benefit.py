"""Tests for the cost-benefit experiment."""

from repro.experiments import Scale
from repro.experiments.cost_benefit import run_cost_benefit


class TestCostBenefit:
    def test_runs_and_orders(self):
        result = run_cost_benefit(
            scale=Scale.SMALL, list_sizes=(5,), num_baseline_queries=60
        )
        # two-hop never cheaper than one-hop in messages
        assert result.metric("lru5_2hop_msgs") >= result.metric("lru5_1hop_msgs")
        # two-hop never worse in hit rate
        assert result.metric("lru5_2hop_hit") >= result.metric("lru5_1hop_hit")
        # message costs bounded by the list budget
        assert result.metric("lru5_1hop_msgs") <= 5.0

    def test_semantic_more_efficient_than_flooding(self):
        result = run_cost_benefit(
            scale=Scale.SMALL, list_sizes=(5,), num_baseline_queries=60
        )
        semantic = result.metric("lru5_1hop_hit") / result.metric("lru5_1hop_msgs")
        flooding = result.metric("flooding_hit") / result.metric("flooding_msgs")
        assert semantic > flooding

    def test_table_mentions_all_mechanisms(self):
        result = run_cost_benefit(
            scale=Scale.SMALL, list_sizes=(5,), num_baseline_queries=40
        )
        for label in ("semantic", "flooding", "random walk", "central server"):
            assert label in result.table_text
