"""Tests for the ExperimentResult container."""

import pytest

from repro.experiments.result import ExperimentResult
from repro.util.cdf import Series


def sample_result():
    return ExperimentResult(
        experiment_id="figure-0",
        title="A test figure",
        series=[Series("curve", [1, 2], [3, 4])],
        table_text="col\n---\nval",
        metrics={"alpha": 0.5},
        notes="a note",
    )


class TestRender:
    def test_contains_all_sections(self):
        text = sample_result().render()
        assert "figure-0" in text
        assert "A test figure" in text
        assert "curve" in text
        assert "alpha=0.5" in text
        assert "a note" in text
        assert "col" in text

    def test_minimal(self):
        text = ExperimentResult(experiment_id="x", title="t").render()
        assert "x: t" in text


class TestAccessors:
    def test_metric(self):
        assert sample_result().metric("alpha") == 0.5

    def test_metric_missing(self):
        with pytest.raises(KeyError, match="alpha"):
            sample_result().metric("beta")

    def test_series_named(self):
        assert sample_result().series_named("curve").ys == [3, 4]

    def test_series_missing(self):
        with pytest.raises(KeyError):
            sample_result().series_named("nope")


class TestCsvExport:
    def test_series_rows(self):
        text = sample_result().to_csv()
        assert "series:curve,1,3" in text.replace("\r", "")
        assert "metric,alpha,0.5" in text.replace("\r", "")

    def test_header_row(self):
        first_line = sample_result().to_csv().splitlines()[0]
        assert first_line == "kind,name_or_x,value"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "figure.csv"
        sample_result().write_csv(path)
        assert path.read_text().startswith("kind,")

    def test_comma_in_series_name_quoted(self):
        from repro.util.cdf import Series

        result = ExperimentResult(
            experiment_id="x",
            title="t",
            series=[Series("a, b", [1], [2])],
        )
        line = result.to_csv().splitlines()[1]
        assert line.startswith('"series:a, b"')
