"""Determinism tests: same (scale, seed) must reproduce identical
experiment metrics even after the trace cache is cleared — the property
EXPERIMENTS.md's recorded numbers depend on."""

import pytest

from repro import experiments as E
from repro.experiments import Scale
from repro.runtime.cache import SHARED_TRACE_CACHE

SCALE = Scale.SMALL


@pytest.mark.parametrize(
    "runner_name",
    ["run_table1", "run_figure05", "run_figure13", "run_figure18", "run_table3"],
)
def test_metrics_stable_across_cache_clears(runner_name):
    runner = getattr(E, runner_name)
    first = runner(scale=SCALE).metrics
    SHARED_TRACE_CACHE.clear()
    second = runner(scale=SCALE).metrics
    assert first == second


def test_different_seeds_change_metrics():
    first = E.run_figure18(scale=SCALE, seed=1, list_sizes=(5, 20)).metrics
    second = E.run_figure18(scale=SCALE, seed=2, list_sizes=(5, 20)).metrics
    assert first != second


def test_cache_clear_is_safe_mid_session():
    SHARED_TRACE_CACHE.clear()
    result = E.run_figure04(scale=SCALE)
    assert result.metric("share_FR") > 0
