"""Tests for the two-tier overlay simulator and its experiment."""

import pytest

from repro.overlay.cyclon import CyclonConfig
from repro.overlay.simulator import OverlayConfig, SemanticOverlaySimulator
from repro.overlay.vicinity import VicinityConfig
from tests.conftest import build_static


def overlay_config(rounds=10, view_size=4, seed=0):
    return OverlayConfig(
        rounds=rounds,
        cyclon=CyclonConfig(view_size=8, shuffle_length=4),
        vicinity=VicinityConfig(view_size=view_size),
        seed=seed,
    )


def community_trace(num_communities=3, peers_per=6, files_per=10):
    caches = {}
    for community in range(num_communities):
        files = [f"c{community}-f{i}" for i in range(files_per)]
        for member in range(peers_per):
            caches[community * 100 + member] = files
    caches[999] = []  # a free-rider, must be excluded from the overlay
    return build_static(caches)


class TestConstruction:
    def test_free_riders_excluded(self):
        simulator = SemanticOverlaySimulator(community_trace(), overlay_config())
        assert 999 not in simulator.sharers

    def test_needs_sharers(self):
        trace = build_static({0: [], 1: []})
        with pytest.raises(ValueError):
            SemanticOverlaySimulator(trace, overlay_config())

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            OverlayConfig(rounds=0)


class TestRun:
    def test_hit_rate_improves_with_gossip(self):
        simulator = SemanticOverlaySimulator(
            community_trace(num_communities=5, peers_per=6), overlay_config(rounds=12)
        )
        result = simulator.run(measure_every=3)
        assert result.hit_rate_by_round.ys[-1] >= result.hit_rate_by_round.ys[0]
        assert result.final_hit_rate > 0.8  # identical caches inside a community

    def test_quality_converges_to_one_on_cliques(self):
        simulator = SemanticOverlaySimulator(
            community_trace(num_communities=4, peers_per=5),
            overlay_config(rounds=15, view_size=4),
        )
        result = simulator.run()
        assert result.final_quality > 0.9

    def test_underlying_overlay_connected(self):
        simulator = SemanticOverlaySimulator(community_trace(), overlay_config())
        result = simulator.run()
        assert result.connected

    def test_summary_text(self):
        simulator = SemanticOverlaySimulator(community_trace(), overlay_config(rounds=2))
        result = simulator.run()
        assert "hit_rate=" in result.summary()

    def test_series_lengths(self):
        simulator = SemanticOverlaySimulator(community_trace(), overlay_config(rounds=9))
        result = simulator.run(measure_every=3)
        # round 0 + rounds 3, 6, 9
        assert len(result.hit_rate_by_round) == 4


class TestExperiment:
    def test_run_gossip_overlay_small(self):
        from repro.runtime.scale import Scale
        from repro.experiments.overlay_experiments import run_gossip_overlay

        result = run_gossip_overlay(scale=Scale.SMALL, rounds=12)
        assert result.metric("connected") == 1.0
        assert (
            result.metric("overlay_hit_rate")
            >= result.metric("overlay_initial_hit_rate")
        )
        assert 0.0 < result.metric("overlay_knn_quality") <= 1.0
        assert result.metric("rounds_to_converge") <= 12


class TestOverlayVsReactive:
    def test_fixed_strategy_requires_lists(self):
        from repro.core.search import SearchConfig

        with pytest.raises(ValueError, match="initial_lists"):
            SearchConfig(strategy="fixed")

    def test_fixed_lists_never_change(self):
        from repro.core.neighbours import FixedNeighbours

        fixed = FixedNeighbours(3, [1, 2, 3, 4])
        assert list(fixed.ordered()) == [1, 2, 3]
        fixed.record_upload(99)
        assert list(fixed.ordered()) == [1, 2, 3]
        assert fixed.contains(2)
        assert fixed.position(3) == 2
        assert fixed.position(99) is None

    def test_warm_start_seeds_lru(self):
        from repro.core.search import SearchConfig, SearchSimulator

        trace = community_trace()
        config = SearchConfig(
            list_size=3,
            strategy="lru",
            track_load=False,
            initial_lists={0: [1, 2, 3]},
            seed=0,
        )
        simulator = SearchSimulator(trace, config)
        strategy = simulator._strategy_for(0)
        assert list(strategy.ordered()) == [1, 2, 3]

    def test_experiment_ordering(self):
        from repro.runtime.scale import Scale
        from repro.experiments.overlay_experiments import (
            run_overlay_vs_reactive,
        )

        result = run_overlay_vs_reactive(scale=Scale.SMALL, rounds=8)
        assert result.metric("fixed_overlay") > result.metric("lru_cold")
        assert result.metric("lru_warm") >= result.metric("lru_cold")
