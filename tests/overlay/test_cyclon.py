"""Tests for the Cyclon peer-sampling protocol."""

import pytest

from repro.overlay.cyclon import Cyclon, CyclonConfig, ViewEntry


def make_cyclon(n=30, view_size=6, shuffle_length=3, seed=0):
    return Cyclon(
        list(range(n)),
        CyclonConfig(view_size=view_size, shuffle_length=shuffle_length),
        seed=seed,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CyclonConfig(view_size=0)
        with pytest.raises(ValueError):
            CyclonConfig(view_size=4, shuffle_length=5)


class TestBootstrap:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            Cyclon([1])

    def test_views_filled(self):
        cyclon = make_cyclon()
        for peer in cyclon.peers:
            view = cyclon.views[peer]
            assert len(view) == 6
            assert peer not in {e.peer for e in view}

    def test_small_population_views_capped(self):
        cyclon = Cyclon([1, 2, 3], CyclonConfig(view_size=10, shuffle_length=2))
        assert len(cyclon.views[1]) == 2


class TestInvariants:
    def test_no_self_or_duplicate_entries_after_rounds(self):
        cyclon = make_cyclon()
        cyclon.run(10)
        for peer in cyclon.peers:
            members = [e.peer for e in cyclon.views[peer]]
            assert peer not in members
            assert len(members) == len(set(members))

    def test_view_size_bounded(self):
        cyclon = make_cyclon()
        cyclon.run(10)
        for view in cyclon.views.values():
            assert len(view) <= cyclon.config.view_size

    def test_connectivity_maintained(self):
        cyclon = make_cyclon(n=60)
        cyclon.run(15)
        assert cyclon.is_connected()

    def test_ages_bounded_by_shuffling(self):
        """The oldest-first target selection keeps entry ages low."""
        cyclon = make_cyclon()
        cyclon.run(20)
        max_age = max(
            entry.age for view in cyclon.views.values() for entry in view
        )
        assert max_age < 20  # far below the round count

    def test_indegree_balance(self):
        """Cyclon famously balances indegrees; no peer should dominate."""
        cyclon = make_cyclon(n=80, view_size=8, shuffle_length=4, seed=3)
        cyclon.run(20)
        degrees = list(cyclon.in_degrees().values())
        mean = sum(degrees) / len(degrees)
        assert max(degrees) < 3 * mean

    def test_deterministic(self):
        a = make_cyclon(seed=5)
        b = make_cyclon(seed=5)
        a.run(5)
        b.run(5)
        assert {p: [e.peer for e in v] for p, v in a.views.items()} == {
            p: [e.peer for e in v] for p, v in b.views.items()
        }


class TestShuffle:
    def test_shuffle_returns_partner(self):
        cyclon = make_cyclon()
        partner = cyclon.shuffle(0)
        assert partner is not None
        assert partner != 0

    def test_initiator_advertised_to_partner(self):
        cyclon = make_cyclon(n=10, view_size=4, shuffle_length=2, seed=1)
        partner = cyclon.shuffle(0)
        partner_members = {e.peer for e in cyclon.views[partner]}
        assert 0 in partner_members

    def test_random_peer_from_view(self):
        cyclon = make_cyclon()
        peer = cyclon.random_peer(0)
        assert peer in {e.peer for e in cyclon.views[0]} or peer is None


class TestMerge:
    def test_merge_drops_self(self):
        cyclon = make_cyclon()
        merged = cyclon._merge(0, [], [ViewEntry(0, 1), ViewEntry(5, 0)], [])
        assert [e.peer for e in merged] == [5]

    def test_merge_prefers_received_over_sent(self):
        cyclon = Cyclon([0, 1, 2, 3, 4, 5], CyclonConfig(view_size=2, shuffle_length=2))
        view = [ViewEntry(1, 0), ViewEntry(2, 0)]
        merged = cyclon._merge(0, view, [ViewEntry(3, 0)], sent_peers=[1])
        members = [e.peer for e in merged]
        assert 3 in members
        assert 1 not in members
        assert len(members) == 2
