"""Tests for the Vicinity semantic-clustering protocol."""

import pytest

from repro.overlay.cyclon import Cyclon, CyclonConfig
from repro.overlay.vicinity import Vicinity, VicinityConfig, cache_proximity


def community_caches(num_communities=3, peers_per=6, files_per=12):
    """Disjoint communities with identical caches inside each."""
    caches = {}
    for community in range(num_communities):
        files = frozenset(f"c{community}-f{i}" for i in range(files_per))
        for member in range(peers_per):
            caches[community * 100 + member] = files
    return caches


def build(caches, view_size=4, explore=0.3, seed=0, cyclon_view=8):
    peers = sorted(caches)
    cyclon = Cyclon(
        peers, CyclonConfig(view_size=min(cyclon_view, len(peers) - 1), shuffle_length=3), seed=seed
    )
    vicinity = Vicinity(
        caches,
        cyclon,
        VicinityConfig(view_size=view_size, explore_probability=explore),
        seed=seed,
    )
    return vicinity


class TestProximity:
    def test_overlap(self):
        caches = {1: frozenset({"a", "b"}), 2: frozenset({"b", "c"}), 3: frozenset()}
        assert cache_proximity(caches, 1, 2) == 1.0
        assert cache_proximity(caches, 1, 3) == 0.0

    def test_jaccard(self):
        caches = {1: frozenset({"a", "b"}), 2: frozenset({"b", "c"})}
        assert cache_proximity(caches, 1, 2, jaccard=True) == pytest.approx(1 / 3)

    def test_cached_and_symmetric(self):
        vicinity = build(community_caches())
        assert vicinity.proximity(0, 1) == vicinity.proximity(1, 0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            VicinityConfig(view_size=0)
        with pytest.raises(ValueError):
            VicinityConfig(explore_probability=1.5)


class TestSelection:
    def test_select_prefers_community(self):
        caches = community_caches()
        vicinity = build(caches)
        # Candidates from own community and a foreign one.
        selected = vicinity._select(0, [1, 2, 100, 101, 200])
        assert selected[:2] == [1, 2]

    def test_select_excludes_self(self):
        vicinity = build(community_caches())
        assert 0 not in vicinity._select(0, [0, 1, 2])

    def test_view_bounded(self):
        vicinity = build(community_caches(), view_size=3)
        assert all(len(v) <= 3 for v in vicinity.views.values())


class TestConvergence:
    def test_views_become_community_local(self):
        caches = community_caches(num_communities=4, peers_per=6)
        vicinity = build(caches, view_size=5, seed=2)
        vicinity.run(15)
        local = 0
        total = 0
        for peer, view in vicinity.views.items():
            for other in view:
                total += 1
                if other // 100 == peer // 100:
                    local += 1
        assert local / total > 0.9

    def test_quality_improves(self):
        caches = community_caches(num_communities=4, peers_per=6)
        vicinity = build(caches, view_size=5, seed=3)
        ideal = vicinity.ideal_views()
        before = vicinity.view_quality(ideal)
        vicinity.run(15)
        after = vicinity.view_quality(ideal)
        assert after > before
        assert after > 0.9

    def test_mean_proximity_rises(self):
        caches = community_caches()
        vicinity = build(caches, seed=4)
        before = vicinity.mean_view_proximity()
        vicinity.run(10)
        assert vicinity.mean_view_proximity() >= before


class TestIdealViews:
    def test_only_positive_proximity(self):
        caches = community_caches(num_communities=2, peers_per=4)
        vicinity = build(caches)
        ideal = vicinity.ideal_views()
        for peer, view in ideal.items():
            for other in view:
                assert vicinity.proximity(peer, other) > 0

    def test_quality_of_exact_views_is_one(self):
        caches = community_caches(num_communities=2, peers_per=4)
        vicinity = build(caches, view_size=3)
        ideal = vicinity.ideal_views()
        vicinity.views = {p: list(v) for p, v in ideal.items()}
        assert vicinity.view_quality(ideal) == pytest.approx(1.0)


class TestGossip:
    def test_gossip_updates_both_sides(self):
        caches = community_caches()
        vicinity = build(caches, seed=5)
        partner = vicinity.gossip(0)
        if partner is not None:
            assert len(vicinity.views[0]) <= vicinity.config.view_size
            assert len(vicinity.views[partner]) <= vicinity.config.view_size

    def test_deterministic(self):
        a = build(community_caches(), seed=6)
        b = build(community_caches(), seed=6)
        a.run(5)
        b.run(5)
        assert a.views == b.views
