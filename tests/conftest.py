"""Shared fixtures: tiny hand-built traces and cached small workloads.

Hand-built traces make unit-test assertions exact; the session-scoped
generated workloads are shared across integration tests so the suite stays
fast.
"""

from __future__ import annotations

import pytest

from repro.trace.model import ClientMeta, FileMeta, StaticTrace, Trace
from repro.workload.config import WorkloadConfig
from repro.workload.generator import SyntheticWorkloadGenerator


def make_client(client_id: int, **overrides) -> ClientMeta:
    """A ClientMeta with sensible defaults for tests."""
    defaults = dict(
        client_id=client_id,
        uid=f"uid-{client_id}",
        ip=f"10.0.{client_id // 256}.{client_id % 256}",
        country="FR",
        asn=3215,
        nickname=f"peer{client_id}",
    )
    defaults.update(overrides)
    return ClientMeta(**defaults)


def make_file(file_id: str, size: int = 4_000_000, **overrides) -> FileMeta:
    defaults = dict(file_id=file_id, size=size, kind="audio", category=0)
    defaults.update(overrides)
    return FileMeta(**defaults)


def build_trace(day_caches, clients=None, files=None) -> Trace:
    """Build a Trace from ``{day: {client_id: iterable_of_file_ids}}``.

    Client and file metadata are synthesized for any ids not provided.
    """
    all_clients = set()
    all_files = set()
    for caches in day_caches.values():
        for client_id, file_ids in caches.items():
            all_clients.add(client_id)
            all_files.update(file_ids)
    trace = Trace()
    provided_clients = {c.client_id: c for c in (clients or [])}
    for client_id in sorted(all_clients):
        trace.add_client(provided_clients.get(client_id) or make_client(client_id))
    provided_files = {f.file_id: f for f in (files or [])}
    for fid in sorted(all_files):
        trace.add_file(provided_files.get(fid) or make_file(fid))
    for day in sorted(day_caches):
        for client_id, file_ids in day_caches[day].items():
            trace.observe(day, client_id, file_ids)
    return trace


def build_static(caches, clients=None, files=None) -> StaticTrace:
    """Build a StaticTrace from ``{client_id: iterable_of_file_ids}``."""
    all_files = set()
    for file_ids in caches.values():
        all_files.update(file_ids)
    provided_clients = {c.client_id: c for c in (clients or [])}
    provided_files = {f.file_id: f for f in (files or [])}
    return StaticTrace(
        caches={c: frozenset(f) for c, f in caches.items()},
        files={
            fid: provided_files.get(fid) or make_file(fid)
            for fid in sorted(all_files)
        },
        clients={
            c: provided_clients.get(c) or make_client(c) for c in sorted(caches)
        },
    )


@pytest.fixture(scope="session")
def small_config() -> WorkloadConfig:
    return WorkloadConfig().small()


@pytest.fixture(scope="session")
def small_generator(small_config) -> SyntheticWorkloadGenerator:
    generator = SyntheticWorkloadGenerator(config=small_config, seed=7)
    generator.build()
    return generator


@pytest.fixture(scope="session")
def small_temporal_trace(small_config):
    return SyntheticWorkloadGenerator(config=small_config, seed=7).generate()


@pytest.fixture(scope="session")
def small_static_trace(small_config):
    return SyntheticWorkloadGenerator(config=small_config, seed=7).generate_static()
