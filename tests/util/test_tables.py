"""Tests for text-table and series rendering."""

import pytest

from repro.util.cdf import Series
from repro.util.tables import format_table, percent, render_series


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bb"), [("x", 1), ("yyyy", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        # All rows share the same width layout.
        assert len(lines[2]) >= len("yyyy  22") - 1

    def test_title(self):
        out = format_table(("h",), [("v",)], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(("x",), [(0.123456,)])
        assert "0.123" in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_rows_ok(self):
        out = format_table(("a",), [])
        assert "a" in out


class TestRenderSeries:
    def test_renders_points(self):
        s = Series(name="curve", xs=[1, 2], ys=[3, 4])
        out = render_series([s])
        assert "curve" in out
        assert "(1, 3)" in out

    def test_downsamples_long_series(self):
        s = Series(name="long", xs=list(range(1000)), ys=list(range(1000)))
        out = render_series([s], max_points=10)
        assert out.count("(") <= 11
        assert "(0, 0)" in out
        assert "(999, 999)" in out

    def test_empty_series(self):
        out = render_series([Series(name="none")])
        assert "<empty>" in out

    def test_title(self):
        out = render_series([], title="My title")
        assert out.startswith("My title")


class TestPercent:
    def test_format(self):
        assert percent(0.41) == "41.0%"
        assert percent(0.0) == "0.0%"
        assert percent(1.0) == "100.0%"
