"""Atomic writes: a crash mid-write must never tear the target file."""

import os

import pytest

from repro.util.atomic import atomic_replace, atomic_write_bytes, atomic_write_text


class MidWriteCrash(Exception):
    pass


class TestAtomicReplace:
    def test_success_replaces_target(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with atomic_replace(target) as tmp:
            with open(tmp, "w") as fh:
                fh.write("new")
        assert target.read_text() == "new"

    def test_exception_mid_write_keeps_old_content(self, tmp_path):
        """The regression the checkpoint layer depends on: an exception
        (or crash) after a partial write leaves the previous file whole."""
        target = tmp_path / "out.json"
        target.write_text("precious")
        with pytest.raises(MidWriteCrash):
            with atomic_replace(target) as tmp:
                with open(tmp, "w") as fh:
                    fh.write("half a new fi")  # partial content
                    raise MidWriteCrash
        assert target.read_text() == "precious"

    def test_exception_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        with pytest.raises(MidWriteCrash):
            with atomic_replace(target) as tmp:
                raise MidWriteCrash
        assert os.listdir(tmp_path) == ["out.json"]
        assert not os.path.exists(tmp)

    def test_temp_file_lives_next_to_target(self, tmp_path):
        # Same directory => same filesystem => os.replace is atomic.
        target = tmp_path / "deep" / "out.json"
        target.parent.mkdir()
        with atomic_replace(target) as tmp:
            assert os.path.dirname(tmp) == str(target.parent)
            with open(tmp, "w") as fh:
                fh.write("x")
        assert target.read_text() == "x"

    def test_creates_target_that_did_not_exist(self, tmp_path):
        target = tmp_path / "fresh.json"
        with atomic_replace(target) as tmp:
            with open(tmp, "w") as fh:
                fh.write("first")
        assert target.read_text() == "first"


class TestHelpers:
    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "t.txt"
        atomic_write_text(target, "héllo\n")
        assert target.read_text(encoding="utf-8") == "héllo\n"

    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "b.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_relative_path_without_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        atomic_write_text("bare.txt", "ok")
        assert (tmp_path / "bare.txt").read_text() == "ok"
