"""Tests for deterministic RNG streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed, make_rng, stable_choice


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_labels_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_known_value_is_stable_across_runs(self):
        # Pins the derivation; a change here silently breaks every
        # recorded experiment result.
        assert derive_seed(0, "") == derive_seed(0, "")
        assert 0 <= derive_seed(0, "") < 2**63

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=40))
    def test_range_property(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**63


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(5, "x")
        b = RngStream(5, "x")
        assert [a.py.random() for _ in range(5)] == [
            b.py.random() for _ in range(5)
        ]
        assert (a.np.random(5) == b.np.random(5)).all()

    def test_children_are_independent(self):
        root = RngStream(5)
        c1 = root.child("one")
        c2 = root.child("two")
        assert c1.py.random() != c2.py.random()

    def test_child_does_not_disturb_parent(self):
        a = RngStream(5)
        b = RngStream(5)
        a.child("x")  # creating a child must not consume parent state
        assert a.py.random() == b.py.random()

    def test_shuffled_preserves_input(self):
        rng = RngStream(1)
        items = [1, 2, 3, 4]
        out = rng.shuffled(items)
        assert sorted(out) == items
        assert items == [1, 2, 3, 4]

    def test_sample_without_replacement_caps_at_population(self):
        rng = RngStream(1)
        assert sorted(rng.sample_without_replacement([1, 2], 10)) == [1, 2]

    def test_sample_without_replacement_distinct(self):
        rng = RngStream(1)
        out = rng.sample_without_replacement(list(range(100)), 30)
        assert len(out) == len(set(out)) == 30

    def test_weighted_index_bounds(self):
        rng = RngStream(3)
        cum = [1.0, 3.0, 6.0]
        for _ in range(200):
            assert 0 <= rng.weighted_index(cum) < 3

    def test_weighted_index_rejects_zero_total(self):
        rng = RngStream(3)
        with pytest.raises(ValueError):
            rng.weighted_index([0.0, 0.0])

    def test_weighted_index_skew(self):
        rng = RngStream(3)
        counts = [0, 0]
        for _ in range(2000):
            counts[rng.weighted_index([0.9, 1.0])] += 1
        assert counts[0] > counts[1] * 4

    def test_iter_children_count(self):
        rng = RngStream(0)
        kids = list(rng.iter_children("worker", 4))
        assert len(kids) == 4
        assert len({k.label for k in kids}) == 4


class TestMakeRng:
    def test_matches_stream(self):
        assert make_rng(9, "lbl").random() == RngStream(9, "lbl").py.random()


class TestStableChoice:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stable_choice(make_rng(0), [])

    def test_mismatched_weights_raise(self):
        with pytest.raises(ValueError):
            stable_choice(make_rng(0), [1, 2], [1.0])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            stable_choice(make_rng(0), [1, 2], [0.0, 0.0])

    def test_unweighted_uniformish(self):
        rng = make_rng(0)
        seen = {stable_choice(rng, ["a", "b", "c"]) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_respects_weights(self):
        rng = make_rng(0)
        picks = [stable_choice(rng, ["x", "y"], [99.0, 1.0]) for _ in range(300)]
        assert picks.count("x") > 250


class TestStateRoundTrip:
    """getstate()/setstate() and pickling must resume mid-sequence
    exactly — the foundation of checkpoint/resume byte-identity."""

    def test_python_stream_resumes_mid_sequence(self):
        stream = RngStream(7, "state")
        [stream.py.random() for _ in range(100)]  # advance mid-sequence
        state = stream.getstate()
        expected = [stream.py.random() for _ in range(50)]
        stream.setstate(state)
        assert [stream.py.random() for _ in range(50)] == expected

    def test_numpy_stream_resumes_mid_sequence(self):
        stream = RngStream(7, "state")
        stream.np.random(100)
        state = stream.getstate()
        expected = stream.np.random(50)
        stream.setstate(state)
        assert (stream.np.random(50) == expected).all()

    def test_pickle_round_trip_resumes_both_streams(self):
        import pickle

        stream = RngStream(7, "state")
        stream.py.random()
        stream.np.random(13)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone.seed == stream.seed
        assert clone.label == stream.label
        assert [clone.py.random() for _ in range(20)] == [
            stream.py.random() for _ in range(20)
        ]
        assert (clone.np.random(20) == stream.np.random(20)).all()

    def test_restored_stream_spawns_identical_children(self):
        stream = RngStream(7, "state")
        stream.py.random()
        restored = RngStream(0, "other")
        restored.setstate(stream.getstate())
        assert restored.label == "state"
        a = stream.child("sub")
        b = restored.child("sub")
        assert a.py.random() == b.py.random()

    def test_setstate_rejects_foreign_payload(self):
        stream = RngStream(7, "state")
        with pytest.raises(ValueError):
            stream.setstate(("some.other.tag/9", 7, "state", None, None))

    def test_state_capture_does_not_disturb_the_stream(self):
        a = RngStream(7, "state")
        b = RngStream(7, "state")
        a.getstate()
        a.getstate()
        assert a.py.random() == b.py.random()
        assert (a.np.random(5) == b.np.random(5)).all()
