"""Tests for argument-validation helpers."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_range,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts(self, value):
        check_fraction("f", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects(self, value):
        with pytest.raises(ValueError, match="f"):
            check_fraction("f", value)


class TestCheckRange:
    def test_accepts_bounds(self):
        check_range("r", 5, 5, 10)
        check_range("r", 10, 5, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="r"):
            check_range("r", 11, 5, 10)
