"""Tests for Zipf sampling, slope fitting and the swap schedule."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngStream
from repro.util.zipf import (
    ZipfSampler,
    expected_max_rank_share,
    fit_zipf_slope,
    harmonic_number,
    swap_iterations,
    zipf_weights,
)


class TestZipfWeights:
    def test_decreasing(self):
        w = zipf_weights(100, 1.0)
        assert (np.diff(w) <= 0).all()

    def test_flat_head(self):
        w = zipf_weights(100, 1.0, flat_head=10)
        assert len(set(np.round(w[:10], 12))) == 1
        assert w[10] < w[9]

    def test_alpha_zero_uniform(self):
        w = zipf_weights(10, 0.0)
        assert set(w) == {1.0}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)

    def test_flat_head_larger_than_n(self):
        w = zipf_weights(5, 1.0, flat_head=50)
        assert set(np.round(w, 12)) == {round(5.0**-1.0, 12)}


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(50, 1.0)
        rng = RngStream(0)
        for _ in range(500):
            assert 0 <= sampler.sample(rng.py) < 50

    def test_head_is_most_frequent(self):
        sampler = ZipfSampler(100, 1.2)
        rng = RngStream(1)
        draws = [sampler.sample(rng.py) for _ in range(3000)]
        assert draws.count(0) > draws.count(50)

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(20, 0.8)
        total = sum(sampler.probability(i) for i in range(20))
        assert total == pytest.approx(1.0)

    def test_sample_many_matches_range(self):
        sampler = ZipfSampler(30, 1.0)
        rng = RngStream(2)
        out = sampler.sample_many(rng.np, 1000)
        assert out.min() >= 0 and out.max() < 30

    def test_empirical_frequency_tracks_probability(self):
        sampler = ZipfSampler(10, 1.0)
        rng = RngStream(3)
        draws = sampler.sample_many(rng.np, 20000)
        freq0 = np.count_nonzero(draws == 0) / len(draws)
        assert freq0 == pytest.approx(sampler.probability(0), rel=0.15)


class TestFitZipfSlope:
    def test_recovers_exact_power_law(self):
        ranks = np.arange(1, 200)
        values = 1000.0 * ranks**-0.9
        slope, r2 = fit_zipf_slope(ranks, values)
        assert slope == pytest.approx(0.9, abs=0.01)
        assert r2 > 0.999

    def test_skip_head(self):
        ranks = np.arange(1, 200)
        values = 1000.0 * ranks**-0.7
        values[:5] = values[5]  # flat head
        slope, _ = fit_zipf_slope(ranks, values, skip_head=5)
        assert slope == pytest.approx(0.7, abs=0.02)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_zipf_slope([1, 2], [1, 2])

    def test_zeros_dropped(self):
        ranks = [1, 2, 3, 4, 5]
        values = [10, 5, 0, 2, 1]
        slope, _ = fit_zipf_slope(ranks, values)
        assert slope > 0


class TestHarmonics:
    def test_harmonic_number(self):
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_expected_max_rank_share(self):
        assert expected_max_rank_share(1, 1.0) == pytest.approx(1.0)
        assert expected_max_rank_share(100, 1.0) < 0.25


class TestSwapIterations:
    def test_matches_formula(self):
        n = 1000
        assert swap_iterations(n) == int(0.5 * n * math.log(n))

    def test_minimum_one(self):
        assert swap_iterations(1) == 1
        assert swap_iterations(2) >= 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            swap_iterations(0)

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=50)
    def test_superlinear_growth(self, n):
        assert swap_iterations(2 * n) > swap_iterations(n)
