"""Tests for CDF / histogram / series helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.cdf import (
    Histogram,
    Series,
    empirical_cdf,
    fraction_at_most,
    log_bins,
    mean,
    quantile,
)


class TestEmpiricalCdf:
    def test_simple(self):
        xs, ps = empirical_cdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_monotone_and_bounded(self, samples):
        xs, ps = empirical_cdf(samples)
        assert (np.diff(xs) >= 0).all()
        assert (np.diff(ps) >= 0).all()
        assert ps[-1] == pytest.approx(1.0)
        assert ps[0] > 0


class TestFractionAtMost:
    def test_values(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([1, 2, 3, 4], 0) == 0.0
        assert fraction_at_most([1, 2, 3, 4], 10) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_at_most([], 1)


class TestQuantile:
    def test_median(self):
        assert quantile([1, 2, 3], 0.5) == 2

    def test_bad_q(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    def test_empty(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)


class TestLogBins:
    def test_cover_range(self):
        edges = log_bins(1, 1000)
        assert edges[0] == pytest.approx(1)
        assert edges[-1] == pytest.approx(1000)
        assert (np.diff(np.log(edges)) > 0).all()

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log_bins(0, 10)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            log_bins(10, 1)


class TestHistogram:
    def test_from_samples(self):
        h = Histogram.from_samples([1, 2, 3, 10], [0, 5, 20], label="t")
        assert list(h.counts) == [3, 1]
        assert h.total == 4

    def test_normalized_sums_to_one(self):
        h = Histogram.from_samples([1, 2, 3], [0, 2, 4])
        assert h.normalized().sum() == pytest.approx(1.0)

    def test_normalized_empty(self):
        h = Histogram.from_samples([], [0, 1, 2])
        assert h.normalized().sum() == 0.0

    def test_bin_centers(self):
        h = Histogram.from_samples([1], [0, 2, 4])
        assert list(h.bin_centers()) == [1.0, 3.0]


class TestSeries:
    def test_append_and_len(self):
        s = Series(name="s")
        s.append(1, 2)
        s.append(3, 4)
        assert len(s) == 2
        assert s.as_dict() == {1.0: 2.0, 3.0: 4.0}

    def test_y_at(self):
        s = Series(name="s", xs=[1, 2], ys=[10, 20])
        assert s.y_at(2) == 20

    def test_y_at_missing(self):
        s = Series(name="s", xs=[1], ys=[10])
        with pytest.raises(KeyError):
            s.y_at(99)


class TestMean:
    def test_value(self):
        assert mean([1, 2, 3]) == 2

    def test_empty(self):
        with pytest.raises(ValueError):
            mean([])
