"""Table 2: the top-5 autonomous systems.

Paper: AS3320 (Deutsche Telekom) 21% global / 75% national, AS3215
(France Telecom) 15%/51%, AS3352 (Telefonica) 8%/50%, AS12322 (Proxad)
7%/24%, AS1668 (AOL) 3%/60%; together the top five host 54% of clients.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_table2


def test_table2(benchmark):
    result = run_once(benchmark, run_table2, scale=Scale.DEFAULT)
    record(result)
    assert abs(result.metric("as3320_global") - 0.21) < 0.04
    assert abs(result.metric("as3215_global") - 0.15) < 0.04
    assert abs(result.metric("top5_concentration") - 0.54) < 0.08
