"""The observability baseline: profile a standard crawl + search workload.

This benchmark establishes the perf trajectory every future PR aims at:
it runs the protocol-level crawler and the trace-driven semantic search
under an enabled :class:`~repro.obs.Observer` and writes the resulting
``repro.metrics/2`` JSON to ``benchmarks/results/bench-profile.json``.
Comparing that file across commits shows where crawl/search time goes
(span totals) and whether a change moved work between phases (counters).

The committed baseline is also the reference for CI's
``metrics-regression`` job, which re-runs this workload at the *same*
default parameters and gates on ``repro metrics diff`` — counters must
match exactly, timings within a generous relative tolerance.  Keep the
script defaults, ``test_profile_baseline``, and the CI job in lockstep:
all three use clients=60, days=3, the paper seed.

Runs two ways:

- under pytest-benchmark with the rest of the suite
  (``pytest benchmarks/bench_profile.py``);
- as a script for CI smoke runs and ad-hoc profiling::

      PYTHONPATH=src python benchmarks/bench_profile.py \
          --out metrics.json --trace-out trace.json

Timings are machine-specific; the committed baseline is a *shape*
reference (which spans dominate, what the counters are at this workload),
not a number to equal.
"""

from __future__ import annotations

import dataclasses
import os

from repro.analysis.semantic import pair_overlaps
from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.crawler import Crawler, CrawlerConfig
from repro.edonkey.network import NetworkConfig, build_network
from repro.runtime.cache import SHARED_TRACE_CACHE
from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config
from repro.obs import Observer, RunMetrics, validate_metrics

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "bench-profile.json"
)

LIST_SIZES = (5, 10, 20)

# The canonical baseline workload.  CI's metrics-regression job diffs a
# fresh run at these exact parameters against the committed baseline
# with exact counter matching, so changing them requires regenerating
# ``benchmarks/results/bench-profile.json`` in the same commit.
BASELINE_CLIENTS = 60
BASELINE_DAYS = 3


def profile_workload(
    clients: int = BASELINE_CLIENTS,
    days: int = BASELINE_DAYS,
    seed: int = DEFAULT_SEED,
    list_sizes=LIST_SIZES,
    tracer=None,
) -> RunMetrics:
    """Run the standard crawl + search workload under one observer."""
    obs = Observer(tracer=tracer)
    workload = dataclasses.replace(
        workload_config(Scale.SMALL),
        num_clients=clients,
        num_files=max(clients * 15, 500),
        days=days,
        mainstream_pool_size=min(clients, max(clients * 15, 500)),
    )
    network = build_network(
        NetworkConfig(workload=workload), seed=seed, obs=obs
    )
    crawler = Crawler(network, CrawlerConfig(days=days), seed=seed)
    trace = crawler.crawl()
    obs.gauge("workload/snapshots", trace.num_snapshots)

    static = SHARED_TRACE_CACHE.static(Scale.SMALL, seed)

    # Compiled-path stage: compile the static trace and run the pairwise
    # overlap kernel on it, so the regression gate also covers the
    # compiled trace layer (counts are deterministic => exact-match).
    with obs.span("compile"):
        compiled = static.compiled()
    obs.gauge("compiled/files", compiled.num_files)
    obs.gauge("compiled/replicas", compiled.total_replicas)
    with obs.span("analyze/pair_overlaps"):
        overlaps = pair_overlaps(compiled)
    obs.count("analysis/overlapping_pairs", len(overlaps))

    for list_size in list_sizes:
        with obs.span(f"search@{list_size}"):
            simulate_search(
                static,
                SearchConfig(
                    list_size=list_size,
                    strategy="lru",
                    track_load=False,
                    seed=seed,
                ),
                obs=obs,
            )
    return obs.report(
        run={
            "benchmark": "bench-profile",
            "clients": clients,
            "days": days,
            "seed": seed,
        }
    )


def write_baseline(metrics: RunMetrics, path: str = RESULTS_PATH) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    metrics.write(path)


def test_profile_baseline(benchmark):
    from benchmarks.conftest import run_once

    metrics = run_once(benchmark, profile_workload)
    problems = validate_metrics(metrics.to_dict())
    assert problems == [], problems
    # All three instrumented layers must appear in the span tree.
    paths = set(metrics.spans)
    assert any(p.startswith("crawl") for p in paths)
    assert any("advance_day" in p for p in paths)
    assert any("search/" in p or p.startswith("search@") for p in paths)
    # The profile must carry the crawl-phase breakdown a perf PR aims at.
    assert "crawl/day/sweep_nicknames" in paths
    assert "crawl/day/browse" in paths
    assert metrics.counters["search/requests"] > 0
    write_baseline(metrics)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=BASELINE_CLIENTS)
    parser.add_argument("--days", type=int, default=BASELINE_DAYS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default=RESULTS_PATH, help="metrics JSON output path"
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="also write a Chrome trace_event JSON of the workload",
    )
    args = parser.parse_args(argv)
    tracer = None
    if args.trace_out:
        from repro.obs import TraceRecorder

        tracer = TraceRecorder()
    metrics = profile_workload(
        clients=args.clients, days=args.days, seed=args.seed, tracer=tracer
    )
    problems = validate_metrics(metrics.to_dict())
    if problems:
        raise SystemExit("invalid metrics: " + "; ".join(problems))
    write_baseline(metrics, args.out)
    from repro.obs import render_profile

    print(render_profile(metrics))
    print(f"\nWrote {args.out}")
    if tracer is not None:
        tracer.write_chrome(args.trace_out)
        print(f"Wrote Chrome trace ({len(tracer)} events) to {args.trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
