"""Extension: graceful degradation under injected faults.

Sweeps message-loss rates {0, 1%, 5%, 20%} (faulted runs also crash a
server mid-crawl) and asserts the robustness contract: a fault-free run
is perfectly complete, and both trace completeness and the one-hop hit
rate decline smoothly — never collapse — as fault intensity rises.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.fault_experiments import run_fault_degradation

LOSS_RATES = (0.0, 0.01, 0.05, 0.20)


def test_fault_degradation(benchmark):
    result = run_once(
        benchmark,
        run_fault_degradation,
        scale=Scale.SMALL,
        loss_rates=LOSS_RATES,
        num_clients=100,
        days=5,
    )
    record(result)
    # Zero faults means zero degradation, by construction.
    assert result.metric("completeness@0") == 1.0
    # The crawler's retries keep the trace nearly complete through 5%
    # loss plus a mid-crawl server crash, and still useful at 20%.
    assert result.metric("completeness@0.05") > 0.9
    assert result.metric("completeness@0.2") > 0.5
    # Hit rate degrades monotonically (within noise) across the sweep...
    hit_rates = [result.metric(f"hit_rate@{r:g}") for r in LOSS_RATES]
    for lighter, heavier in zip(hit_rates, hit_rates[1:]):
        assert heavier <= lighter + 0.02
    # ...and losing 20% of probes costs far less than 20% of the hits:
    # eviction backfills the neighbour lists with reachable peers.
    assert hit_rates[-1] > 0.7 * hit_rates[0]
