"""Gate the overhead of the live-telemetry plane (flight recorder).

Runs the standard crawl + search workload twice — once bare, once with
an enabled :class:`~repro.obs.FlightRecorder` snapshotting to a JSONL
file at a short interval — and gates on the wall-clock ratio.  The
flight recorder runs on its own daemon thread and only *reads* observer
state, so its cost should be bounded by the sampler wakeups plus the
fsync'd appends; ``MAX_RATIO`` is the budget.

Both runs are timed with the median of ``REPEATS`` repetitions to damp
scheduler noise; the committed baseline
(``benchmarks/results/bench-telemetry.json``) records the trajectory,
and ``repro bench-summary`` reads the ``off_secs`` / ``on_secs`` /
``overhead_ratio`` / ``max_ratio`` fields.

Runs two ways:

- under pytest with the rest of the benchmark suite
  (``pytest benchmarks/bench_telemetry.py``);
- as a script for CI::

      PYTHONPATH=src python benchmarks/bench_telemetry.py --out out.json
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time

from benchmarks.bench_profile import profile_workload
from repro.obs import FlightRecorder, Observer, read_telemetry

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "bench-telemetry.json"
)

# Telemetry workload: smaller than bench-profile's baseline so the
# doubled (off + on) repetitions stay quick in CI.
CLIENTS = 40
DAYS = 2
REPEATS = 3

#: Telemetry may cost at most this much wall-clock relative to a bare
#: run.  Generous because the denominator is only a few seconds, where
#: one scheduler hiccup is a visible fraction.
MAX_RATIO = 1.25

#: Snapshot aggressively (the gate should cover a worse-than-default
#: interval; production default is 1s).
INTERVAL_S = 0.05


def _run_once(telemetry_path=None) -> float:
    start = time.perf_counter()
    if telemetry_path is None:
        profile_workload(clients=CLIENTS, days=DAYS)
    else:
        obs = Observer()
        recorder = FlightRecorder(
            telemetry_path, obs=obs, interval_s=INTERVAL_S, source="bench"
        )
        recorder.start()
        try:
            profile_workload(clients=CLIENTS, days=DAYS)
        finally:
            recorder.close()
    return time.perf_counter() - start


def measure(repeats: int = REPEATS) -> dict:
    """Median off/on timings plus the overhead ratio and gate."""
    off = []
    on = []
    snapshots = 0
    with tempfile.TemporaryDirectory() as tmp:
        for index in range(repeats):
            off.append(_run_once())
            path = os.path.join(tmp, f"telemetry-{index}.jsonl")
            on.append(_run_once(telemetry_path=path))
            records, _truncated = read_telemetry(path)
            snapshots = max(
                snapshots,
                sum(1 for r in records if r.get("kind") == "snapshot"),
            )
    off_secs = statistics.median(off)
    on_secs = statistics.median(on)
    return {
        "benchmark": "bench-telemetry",
        "clients": CLIENTS,
        "days": DAYS,
        "repeats": repeats,
        "interval_s": INTERVAL_S,
        "off_secs": round(off_secs, 4),
        "on_secs": round(on_secs, 4),
        "overhead_ratio": round(on_secs / off_secs, 4),
        "max_ratio": MAX_RATIO,
        "snapshots": snapshots,
    }


def test_telemetry_overhead():
    result = measure(repeats=1)
    # At a 50ms interval even the shortest run must snapshot repeatedly.
    assert result["snapshots"] >= 2, result
    assert result["overhead_ratio"] <= MAX_RATIO, result


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=RESULTS_PATH)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="record the measurement without failing on the ratio gate",
    )
    args = parser.parse_args(argv)
    result = measure(repeats=args.repeats)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    summary = (
        f"off {result['off_secs']:.3f}s  on {result['on_secs']:.3f}s  "
        f"overhead {result['overhead_ratio']:.3f}x "
        f"(gate {MAX_RATIO}x, {result['snapshots']} snapshots)"
    )
    txt_path = os.path.splitext(args.out)[0] + ".txt"
    with open(txt_path, "w", encoding="utf-8") as fh:
        fh.write(
            "bench-telemetry: flight-recorder overhead on the "
            f"bench-profile workload (clients={CLIENTS}, days={DAYS}, "
            f"interval={INTERVAL_S}s, median of "
            f"{result['repeats']} repeats)\n{summary}\n"
        )
    print(summary)
    print(f"Wrote {args.out}")
    if not args.no_gate and result["overhead_ratio"] > MAX_RATIO:
        print("FAIL: telemetry overhead above gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
