"""Extension: crash-resilience of the checkpointed crawler.

Runs a chaos campaign (SIGKILL a checkpointing CLI crawl at seeded
random days, resume it, diff the final artefacts against an
uninterrupted reference) and asserts the crash-safety contract: every
trial must end byte-identical in its trace, equal in its metrics
counters, and structurally sound in its restored network.

Also measures the overhead question a checkpoint layer must answer:
how much wall-clock does per-day checkpointing add to an otherwise
identical crawl?  The ratio is recorded in the result metrics (it is
machine-specific — a shape reference, not a number to equal).

Runs two ways, like ``bench_profile``:

- under pytest-benchmark with the rest of the suite;
- as a script that writes the committed metrics baseline
  ``benchmarks/results/bench-chaos.json`` (``repro.metrics/2``, so
  ``repro metrics diff`` can gate a fresh campaign against it — the
  campaign is seeded, so its counters and chaos gauges are exact) plus
  a rendered ``.txt`` profile::

      PYTHONPATH=src python benchmarks/bench_chaos.py
"""

import os
import time

from repro.experiments import Scale
from repro.experiments.chaos_experiment import run_chaos


def _timed_crawl(checkpoint_dir=None):
    import dataclasses

    from repro.edonkey.crawler import Crawler, CrawlerConfig
    from repro.edonkey.network import NetworkConfig, build_network
    from repro.runtime import DEFAULT_SEED, workload_config

    clients, days = 60, 4
    workload = dataclasses.replace(
        workload_config(Scale.SMALL),
        num_clients=clients,
        num_files=max(clients * 15, 500),
        days=days,
        mainstream_pool_size=min(clients, max(clients * 15, 500)),
    )
    network = build_network(
        NetworkConfig(workload=workload), seed=DEFAULT_SEED
    )
    crawler = Crawler(network, CrawlerConfig(days=days), seed=DEFAULT_SEED)
    checkpointer = None
    if checkpoint_dir is not None:
        from repro.checkpoint import Checkpointer

        checkpointer = Checkpointer(checkpoint_dir)
    start = time.perf_counter()
    trace = crawler.crawl(checkpointer=checkpointer)
    return time.perf_counter() - start, trace


def test_chaos_resilience(benchmark, tmp_path):
    # Imported here, not at module level: the conftest only resolves
    # under pytest's rootdir insertion, and this file also runs as a
    # plain script (``python benchmarks/bench_chaos.py``).
    from benchmarks.conftest import record, run_once

    result = run_once(
        benchmark,
        run_chaos,
        scale=Scale.TINY,
        trials=2,
        kills=2,
        num_clients=40,
        days=5,
    )

    # Checkpoint overhead: the same crawl with and without per-day
    # snapshots, summarized as a ratio in the recorded metrics.
    plain_secs, plain_trace = _timed_crawl()
    ckpt_secs, ckpt_trace = _timed_crawl(checkpoint_dir=tmp_path / "ckpt")
    assert ckpt_trace.num_snapshots == plain_trace.num_snapshots
    result.metrics["checkpoint_overhead_x"] = (
        ckpt_secs / plain_secs if plain_secs > 0 else 1.0
    )
    record(result)

    # The crash-safety contract, not a statistical trend: every trial
    # must resume to byte-identical artefacts.
    assert result.metric("passed") == 1.0
    assert result.metric("equivalence_rate") == 1.0
    assert result.metric("kills") >= result.metric("trials")


RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "bench-chaos.json"
)

# The committed-baseline campaign parameters; a diff gate only means
# something if a fresh run uses the same ones.
BASELINE_TRIALS = 2
BASELINE_KILLS = 2
BASELINE_CLIENTS = 40
BASELINE_DAYS = 5


def main(argv=None) -> int:
    import argparse

    from repro.obs import Observer, render_profile, validate_metrics
    from repro.runtime import DEFAULT_SEED

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--trials", type=int, default=BASELINE_TRIALS)
    parser.add_argument("--kills", type=int, default=BASELINE_KILLS)
    parser.add_argument("--clients", type=int, default=BASELINE_CLIENTS)
    parser.add_argument("--days", type=int, default=BASELINE_DAYS)
    parser.add_argument(
        "--out", default=RESULTS_PATH, help="metrics JSON output path"
    )
    args = parser.parse_args(argv)

    obs = Observer()
    result = run_chaos(
        scale=Scale.TINY,
        seed=args.seed,
        trials=args.trials,
        kills=args.kills,
        num_clients=args.clients,
        days=args.days,
        obs=obs,
    )
    # The campaign verdicts ride along as gauges so the metrics file is
    # self-contained: diffing it checks both the observer's counters and
    # the equivalence outcome.
    for name, value in sorted(result.metrics.items()):
        obs.gauge(f"chaos/{name}", value)
    metrics = obs.report(
        run={
            "benchmark": "bench-chaos",
            "seed": args.seed,
            "trials": args.trials,
            "kills": args.kills,
            "clients": args.clients,
            "days": args.days,
        }
    )
    problems = validate_metrics(metrics.to_dict())
    if problems:
        raise SystemExit("invalid metrics: " + "; ".join(problems))
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    metrics.write(args.out)
    txt_path = os.path.splitext(args.out)[0] + ".txt"
    with open(txt_path, "w") as fh:
        fh.write(render_profile(metrics) + "\n")
    print(render_profile(metrics))
    print(f"\nWrote {args.out}")
    if result.metric("passed") != 1.0:
        print("FAIL: a chaos trial did not resume to identical artefacts")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
