"""Extension: crash-resilience of the checkpointed crawler.

Runs a chaos campaign (SIGKILL a checkpointing CLI crawl at seeded
random days, resume it, diff the final artefacts against an
uninterrupted reference) and asserts the crash-safety contract: every
trial must end byte-identical in its trace, equal in its metrics
counters, and structurally sound in its restored network.

Also measures the overhead question a checkpoint layer must answer:
how much wall-clock does per-day checkpointing add to an otherwise
identical crawl?  The ratio is recorded in the result metrics (it is
machine-specific — a shape reference, not a number to equal).
"""

import time

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.chaos_experiment import run_chaos


def _timed_crawl(checkpoint_dir=None):
    import dataclasses

    from repro.edonkey.crawler import Crawler, CrawlerConfig
    from repro.edonkey.network import NetworkConfig, build_network
    from repro.runtime import DEFAULT_SEED, workload_config

    clients, days = 60, 4
    workload = dataclasses.replace(
        workload_config(Scale.SMALL),
        num_clients=clients,
        num_files=max(clients * 15, 500),
        days=days,
        mainstream_pool_size=min(clients, max(clients * 15, 500)),
    )
    network = build_network(
        NetworkConfig(workload=workload), seed=DEFAULT_SEED
    )
    crawler = Crawler(network, CrawlerConfig(days=days), seed=DEFAULT_SEED)
    checkpointer = None
    if checkpoint_dir is not None:
        from repro.checkpoint import Checkpointer

        checkpointer = Checkpointer(checkpoint_dir)
    start = time.perf_counter()
    trace = crawler.crawl(checkpointer=checkpointer)
    return time.perf_counter() - start, trace


def test_chaos_resilience(benchmark, tmp_path):
    result = run_once(
        benchmark,
        run_chaos,
        scale=Scale.TINY,
        trials=2,
        kills=2,
        num_clients=40,
        days=5,
    )

    # Checkpoint overhead: the same crawl with and without per-day
    # snapshots, summarized as a ratio in the recorded metrics.
    plain_secs, plain_trace = _timed_crawl()
    ckpt_secs, ckpt_trace = _timed_crawl(checkpoint_dir=tmp_path / "ckpt")
    assert ckpt_trace.num_snapshots == plain_trace.num_snapshots
    result.metrics["checkpoint_overhead_x"] = (
        ckpt_secs / plain_secs if plain_secs > 0 else 1.0
    )
    record(result)

    # The crash-safety contract, not a statistical trend: every trial
    # must resume to byte-identical artefacts.
    assert result.metric("passed") == 1.0
    assert result.metric("equivalence_rate") == 1.0
    assert result.metric("kills") >= result.metric("trials")
