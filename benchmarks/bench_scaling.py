"""Scaling benchmark of the sharded multi-process runtime.

Three measurements, mirroring the contract of
:mod:`repro.runtime.sharded`:

- **strong scaling** (gated): one fixed DEFAULT-scale search workload —
  sixteen list sizes over one compiled trace — run sequentially and
  through ``sharded_search`` with 2 and 4 workers.  The speedup at the
  largest worker count must reach ``MIN_SPEEDUP`` (2x) *when the machine
  can express it*: on runners with fewer visible cores than workers the
  speedup gate is reported as skipped (a process pool cannot beat the
  core count), exactly like bench_compiled's no-gate CI smoke.
- **weak scaling** (informational): crawls with ``clients = base x
  workers`` against ``sharded_crawl`` with that worker count.  Ideal
  efficiency (t1/tN) is 1.0; the real curve pays for each worker
  rebuilding the shared network, which is the documented cost model.
- **import baseline** (always gated, even under ``--no-gate``): a fresh
  interpreter importing the CLI + trace-store + shm + runtime modules
  must stay numpy-free and under ``RSS_CEILING_MB`` — the lazy-import
  regression check for the kernels this PR added.

Sharded search results are checked against the sequential run before any
timing is reported.  Results land in
``benchmarks/results/bench-scaling.json`` (machine-readable) and
``.txt`` (human-readable); CI runs a SMALL-scale 2-worker smoke with
``--no-gate``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from repro.core.search import SearchConfig, simulate_search
from repro.runtime.cache import SHARED_TRACE_CACHE
from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_JSON = os.path.join(RESULTS_DIR, "bench-scaling.json")
RESULTS_TXT = os.path.join(RESULTS_DIR, "bench-scaling.txt")

#: The strong-scaling speedup floor at the largest worker count.
MIN_SPEEDUP = 2.0
WORKER_COUNTS = (1, 2, 4)

#: One task per list size; enough tasks to amortize pool startup and
#: keep all workers busy for several scheduling rounds.
LIST_SIZES = (2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48)

#: Modules every store/CLI tool imports; they must not drag numpy in.
#: The message-plane layers (wire codec, transport seam, protocol
#: handlers) ride on the CLI path too, so they sit under the same gate
#: — and they must not pull in asyncio either (only the service package
#: may, and the CLI imports that lazily inside cmd_serve/cmd_loadgen).
BASELINE_MODULES = (
    "repro.cli",
    "repro.trace.store",
    "repro.trace.shm",
    "repro.runtime",
    "repro.edonkey.wire",
    "repro.edonkey.transport",
    "repro.edonkey.protocol",
)

#: Imported *after* the asyncio-free check: service mode legitimately
#: needs asyncio, but even with it loaded the baseline must stay
#: numpy-free and under the RSS ceiling.
SERVICE_MODULES = ("repro.service",)
RSS_CEILING_MB = 64.0

#: Weak-scaling crawl size per worker, by scale.
CLIENTS_PER_WORKER = {
    Scale.TINY: 40,
    Scale.SMALL: 60,
    Scale.DEFAULT: 150,
    Scale.LARGE: 300,
}
WEAK_DAYS = 3


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(repeat, fn):
    """Best (minimum) wall time of ``repeat`` runs; returns (secs, result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def check_import_baseline() -> dict:
    """Fresh-interpreter import check: numpy-free, asyncio-lazy, RSS-bounded.

    Two stages in one subprocess: after the baseline (CLI-path) modules,
    asyncio must be absent; after the service package joins them, numpy
    must still be absent and the peak RSS under the ceiling.
    """
    script = (
        "import resource, sys\n"
        + "\n".join(f"import {module}" for module in BASELINE_MODULES)
        + "\nasyncio_preloaded = int('asyncio' in sys.modules)\n"
        + "\n".join(f"import {module}" for module in SERVICE_MODULES)
        + "\nprint(int('numpy' in sys.modules), asyncio_preloaded,"
        " resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    numpy_flag, asyncio_flag, maxrss_kb = result.stdout.split()
    return {
        "modules": list(BASELINE_MODULES),
        "service_modules": list(SERVICE_MODULES),
        "numpy_loaded": bool(int(numpy_flag)),
        "asyncio_preloaded": bool(int(asyncio_flag)),
        "rss_mb": int(maxrss_kb) / 1024.0,
        "rss_ceiling_mb": RSS_CEILING_MB,
    }


def _search_configs(seed: int):
    return [
        SearchConfig(list_size=size, track_load=False, seed=seed)
        for size in LIST_SIZES
    ]


def run_strong(scale: Scale, seed: int, repeat: int, worker_counts) -> dict:
    """Fixed workload, growing worker pool; checks results en route."""
    from repro.runtime.sharded import sharded_search

    static = SHARED_TRACE_CACHE.static(scale, seed)
    compiled = static.compiled()  # compile outside the timed region
    configs = _search_configs(seed)

    seq_secs, seq_results = _best_of(
        repeat, lambda: [simulate_search(static, c) for c in configs]
    )
    runs = {"1": {"secs": seq_secs}}
    for workers in worker_counts:
        if workers == 1:
            continue
        secs, results = _best_of(
            repeat, lambda w=workers: sharded_search(compiled, configs, workers=w)
        )
        for sequential, sharded in zip(seq_results, results):
            if sequential.rates != sharded.rates:
                raise AssertionError(
                    f"sharded search diverged at {workers} workers"
                )
        runs[str(workers)] = {"secs": secs, "speedup": seq_secs / secs}
    return {
        "clients": len(static.caches),
        "configs": len(configs),
        "runs": runs,
    }


def _weak_workload(scale: Scale, workers: int):
    import dataclasses

    clients = CLIENTS_PER_WORKER.get(scale, 150) * workers
    return dataclasses.replace(
        workload_config(Scale.SMALL),
        num_clients=clients,
        num_files=max(clients * 15, 500),
        days=WEAK_DAYS,
        mainstream_pool_size=min(clients, max(clients * 15, 500)),
    )


def run_weak(scale: Scale, seed: int, repeat: int, worker_counts) -> dict:
    """Work grows with the pool: ``clients = base x workers``."""
    from repro.edonkey.crawler import Crawler, CrawlerConfig
    from repro.edonkey.network import NetworkConfig, build_network
    from repro.runtime.sharded import sharded_crawl

    def sequential():
        network = build_network(
            NetworkConfig(workload=_weak_workload(scale, 1)), seed=seed
        )
        return Crawler(network, CrawlerConfig(days=WEAK_DAYS), seed=seed).crawl()

    seq_secs, _ = _best_of(repeat, sequential)
    base_clients = CLIENTS_PER_WORKER.get(scale, 150)
    runs = {"1": {"clients": base_clients, "secs": seq_secs}}
    for workers in worker_counts:
        if workers == 1:
            continue
        secs, _ = _best_of(
            repeat,
            lambda w=workers: sharded_crawl(
                NetworkConfig(workload=_weak_workload(scale, w)),
                CrawlerConfig(days=WEAK_DAYS),
                seed,
                workers=w,
            ),
        )
        runs[str(workers)] = {
            "clients": base_clients * workers,
            "secs": secs,
            "efficiency": seq_secs / secs,
        }
    return {"days": WEAK_DAYS, "runs": runs}


def run_bench(scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED,
              repeat: int = 2, worker_counts=WORKER_COUNTS) -> dict:
    cores = _cores()
    max_workers = max(worker_counts)
    enforced = cores >= max_workers
    return {
        "benchmark": "bench-scaling",
        "scale": scale.name,
        "seed": seed,
        "repeat": repeat,
        "workers": list(worker_counts),
        "cores": cores,
        "min_speedup": MIN_SPEEDUP,
        "speedup_gate": {
            "workers": max_workers,
            "enforced": enforced,
            "reason": None if enforced else (
                f"only {cores} core(s) visible; a process pool cannot "
                f"exceed the core count, so the {max_workers}-worker "
                "speedup floor is reported but not enforced"
            ),
        },
        "baseline": check_import_baseline(),
        "strong": run_strong(scale, seed, repeat, worker_counts),
        "weak": run_weak(scale, seed, repeat, worker_counts),
    }


def gate_failures(doc: dict) -> list:
    """Deterministic checks always; the speedup floor when expressible."""
    failures = []
    if doc["baseline"]["numpy_loaded"]:
        failures.append("lazy_imports")
    if doc["baseline"].get("asyncio_preloaded"):
        failures.append("eager_asyncio")
    if doc["baseline"]["rss_mb"] > doc["baseline"]["rss_ceiling_mb"]:
        failures.append("baseline_rss")
    gate = doc["speedup_gate"]
    if gate["enforced"]:
        top = doc["strong"]["runs"].get(str(gate["workers"]))
        if top is not None and top["speedup"] < doc["min_speedup"]:
            failures.append("strong_scaling")
    return failures


def render(doc: dict) -> str:
    gate = doc["speedup_gate"]
    baseline = doc["baseline"]
    lines = [
        f"bench-scaling  scale={doc['scale']} seed={doc['seed']} "
        f"cores={doc['cores']} repeat={doc['repeat']}",
        f"import baseline: numpy_loaded={baseline['numpy_loaded']} "
        f"rss={baseline['rss_mb']:.1f}MB (ceiling {baseline['rss_ceiling_mb']:.0f}MB)",
        "",
        f"strong scaling  ({doc['strong']['configs']} search configs, "
        f"{doc['strong']['clients']} clients, fixed)",
        f"{'workers':<10}{'secs':>10}{'speedup':>10}  gate",
    ]
    for workers, run in doc["strong"]["runs"].items():
        speedup = run.get("speedup")
        is_gated = gate["enforced"] and int(workers) == gate["workers"]
        lines.append(
            f"{workers:<10}{run['secs']:>9.2f}s"
            + (f"{speedup:>9.2f}x" if speedup is not None else f"{'-':>10}")
            + ("  >=%.0fx" % doc["min_speedup"] if is_gated else "  -")
        )
    if not gate["enforced"]:
        lines.append(f"(speedup gate skipped: {gate['reason']})")
    lines += [
        "",
        f"weak scaling  (clients = base x workers, {doc['weak']['days']} days)",
        f"{'workers':<10}{'clients':>10}{'secs':>10}{'efficiency':>12}",
    ]
    for workers, run in doc["weak"]["runs"].items():
        efficiency = run.get("efficiency")
        lines.append(
            f"{workers:<10}{run['clients']:>10}{run['secs']:>9.2f}s"
            + (f"{efficiency:>11.2f}x" if efficiency is not None else f"{'-':>12}")
        )
    return "\n".join(lines)


def write_results(doc: dict, json_path: str = RESULTS_JSON,
                  txt_path: str = RESULTS_TXT) -> None:
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(txt_path, "w") as fh:
        fh.write(render(doc) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="default",
        choices=["tiny", "small", "default", "large"],
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(WORKER_COUNTS),
        help="worker counts to sweep (1 is always the baseline)",
    )
    parser.add_argument("--out", default=RESULTS_JSON)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the speedup floor (CI smoke); the lazy-import and "
        "RSS checks are deterministic and stay enforced",
    )
    args = parser.parse_args(argv)

    doc = run_bench(
        scale=Scale[args.scale.upper()],
        seed=args.seed,
        repeat=args.repeat,
        worker_counts=tuple(sorted(set(args.workers) | {1})),
    )
    txt_path = os.path.splitext(args.out)[0] + ".txt"
    write_results(doc, args.out, txt_path)
    print(render(doc))
    print(f"\nWrote {args.out}")

    failures = gate_failures(doc)
    if args.no_gate:
        failures = [f for f in failures if f != "strong_scaling"]
    if failures:
        print("FAIL: " + ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
