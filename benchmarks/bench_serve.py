"""Gate the live service path: serve + loadgen on one event loop.

Runs an in-process :class:`~repro.service.IndexService` and replays the
standard seeded loadgen mix (seed 0, scale tiny, 1200 requests over 8
sessions at 400 req/s) against it over real TCP sockets.  The gate:

- every request succeeds — zero errors, zero timeouts;
- achieved throughput stays above ``MIN_RPS`` (an open-loop run that
  cannot keep up with a 400 req/s offered load on an in-memory index
  has regressed badly);
- the latency histogram and p50/p99 gauges are present in the output.

The output file ``benchmarks/results/bench-serve.json`` is a real
``repro.metrics/2`` payload — the *same* shape ``repro loadgen
--metrics-out`` writes — so CI's serve-smoke job can replay the
identical mix against a subprocess `repro serve` and compare with
``repro metrics diff``: counters and histogram counts exactly (the plan
is deterministic and every request is read-only), latencies ignored.

Runs two ways:

- under pytest with the rest of the benchmark suite
  (``pytest benchmarks/bench_serve.py``);
- as a script for CI / refreshing the baseline::

      PYTHONPATH=src python benchmarks/bench_serve.py --out out.json
"""

from __future__ import annotations

import asyncio
import json
import os

from repro.obs import Observer
from repro.service import (
    IndexService,
    LoadGenConfig,
    ServiceConfig,
    run_loadgen,
)

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "bench-serve.json"
)

# The canonical smoke mix — CI's serve-smoke job must pass exactly
# these to `repro loadgen` for the metrics diff to line up.
SEED = 0
SCALE = "tiny"
REQUESTS = 1200
RATE = 400.0
SESSIONS = 8

#: Floor on achieved throughput.  The offered load is 400 req/s; an
#: unloaded in-memory index sustains thousands, so falling under this
#: means the service path (codec, event loop, dispatch) regressed.
MIN_RPS = 100.0


def run_serve_loadgen(
    requests: int = REQUESTS, rate: float = RATE, sessions: int = SESSIONS
):
    """One in-process serve+loadgen run; ``(LoadGenResult, RunMetrics)``.

    The observer is attached to the *loadgen* side only, so the payload
    matches what ``repro loadgen --metrics-out`` produces against a
    separate serve process.
    """
    obs = Observer()

    async def body():
        service = IndexService(ServiceConfig(seed=SEED))
        port = await service.start()
        try:
            return await run_loadgen(
                LoadGenConfig(
                    port=port,
                    requests=requests,
                    rate=rate,
                    sessions=sessions,
                    seed=SEED,
                    scale=SCALE,
                ),
                obs=obs,
            )
        finally:
            service.request_stop()
            await service.serve_until_stopped()

    result = asyncio.run(body())
    metrics = obs.report(
        run={
            "command": "bench-serve",
            "seed": SEED,
            "scale": SCALE,
            "requests": requests,
            "rate": rate,
            "sessions": sessions,
        }
    )
    return result, metrics


def check_gate(result, metrics) -> list:
    """The list of gate violations (empty = pass)."""
    problems = []
    if result.errors:
        problems.append(f"{result.errors} requests returned errors")
    if result.timeouts:
        problems.append(f"{result.timeouts} requests timed out")
    if result.throughput_rps < MIN_RPS:
        problems.append(
            f"throughput {result.throughput_rps:.0f} req/s under the "
            f"{MIN_RPS:.0f} req/s floor"
        )
    if "loadgen/latency_s" not in metrics.histograms:
        problems.append("latency histogram missing from metrics")
    if metrics.gauges.get("loadgen/p99_ms", 0) <= 0:
        problems.append("p99 gauge missing from metrics")
    return problems


def test_serve_loadgen_gate():
    # Smaller than the CI mix: the gate properties, not the baseline.
    result, metrics = run_serve_loadgen(requests=300, rate=3000.0, sessions=4)
    assert check_gate(result, metrics) == [], (result, metrics.counters)
    assert result.ok == 300


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=RESULTS_PATH)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="record the measurement without failing on the gate",
    )
    args = parser.parse_args(argv)
    result, metrics = run_serve_loadgen()
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    metrics.write(args.out)
    summary = result.summary()
    txt_path = os.path.splitext(args.out)[0] + ".txt"
    with open(txt_path, "w", encoding="utf-8") as fh:
        fh.write(
            "bench-serve: in-process serve + seeded loadgen "
            f"(seed={SEED}, scale={SCALE}, {REQUESTS} requests over "
            f"{SESSIONS} sessions at {RATE:.0f} req/s offered)\n"
            f"{summary}\n"
        )
    print(summary)
    print(f"Wrote {args.out}")
    problems = check_gate(result, metrics)
    if problems and not args.no_gate:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
