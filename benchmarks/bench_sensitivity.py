"""Robustness: sensitivity to the interest-loyalty parameter.

The whole reproduction hinges on one planted parameter — the probability
that a peer's next file comes from a subscribed interest category.  This
bench sweeps it and asserts the headline quantity (Figure 21's semantic
share) responds monotonically and does not balance on a knife-edge.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.extension_experiments import run_loyalty_sensitivity


def test_loyalty_sensitivity(benchmark):
    result = run_once(benchmark, run_loyalty_sensitivity, scale=Scale.DEFAULT)
    record(result)
    shares = [
        result.metric("share_at_0_5"),
        result.metric("share_at_0_7"),
        result.metric("share_at_0_9"),
    ]
    # Monotone in loyalty...
    assert shares[0] < shares[1] < shares[2]
    # ...and already meaningful at 0.7 (no knife-edge at the calibrated 0.9).
    assert shares[1] > 0.05
