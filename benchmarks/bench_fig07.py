"""Figure 7: files and disk space shared per client.

Paper: ~80% free-riders; 80% of the remaining clients share < 100 files;
fewer than 10% of sharers hold < 1GB; the top 15% of peers offer 75% of
the files.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure07


def test_figure07(benchmark):
    result = run_once(benchmark, run_figure07, scale=Scale.DEFAULT)
    record(result)
    assert 0.6 < result.metric("free_rider_fraction") < 0.85
    assert 0.6 < result.metric("sharers_under_100_files") < 0.95
    assert result.metric("sharers_under_1gb") < 0.5
    assert result.metric("top15pct_share_of_files") > 0.45
