"""Figure 14: clustering correlation, real trace vs randomized trace.

Paper: over all files the two traces look alike (popular files mask the
interest structure), but at popularity 3 and 5 the real trace clusters
far more - the definitive evidence of genuine interest-based clustering.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure14


def test_figure14(benchmark):
    result = run_once(benchmark, run_figure14, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("pop3_trace_p1") > result.metric("pop3_random_p1") + 5.0
    assert result.metric("pop5_trace_p1") > result.metric("pop5_random_p1") + 5.0
    all_gap = abs(result.metric("all_trace_p1") - result.metric("all_random_p1"))
    assert all_gap < 15.0
