"""Table 1: general characteristics of the full / filtered / extrapolated
traces.

Paper: 56 days, 1.16M clients (84% free-riders), 11M distinct files;
filtered 320k clients (70% free-riders); extrapolated 53k clients (74%).
At reproduction scale the absolute counts shrink ~500x; the free-riding
fractions and the full > filtered > extrapolated ordering must hold.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_table1


def test_table1(benchmark):
    result = run_once(benchmark, run_table1, scale=Scale.DEFAULT)
    record(result)
    assert 0.65 < result.metric("full_free_rider_fraction") < 0.85
    assert (
        result.metric("full_clients")
        >= result.metric("filtered_clients")
        >= result.metric("extrapolated_clients")
    )
    assert result.metric("full_files") > 10_000
