"""Extension: the epidemic semantic overlay (two-tier Cyclon+Vicinity).

The paper's conclusion announces an implementation of semantic links in a
real client, and its related work highlights the gossip-based semantic
overlay evaluated on the authors' earlier eDonkey trace.  This bench runs
that proactive architecture on the reproduction workload and compares it
with the paper's reactive LRU lists at the same view size.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.overlay_experiments import run_gossip_overlay


def test_gossip_overlay(benchmark):
    result = run_once(benchmark, run_gossip_overlay, scale=Scale.DEFAULT)
    record(result)
    # The bottom tier stays connected; the top tier converges to most of
    # the true k-NN graph within the round budget...
    assert result.metric("connected") == 1.0
    assert result.metric("overlay_knn_quality") > 0.6
    # ...and the converged semantic views cover interests far better than
    # the random bootstrap views.
    assert result.metric("overlay_hit_rate") > 1.5 * result.metric(
        "overlay_initial_hit_rate"
    )
    # Proactive gossip is competitive with upload-driven LRU lists.
    assert result.metric("overlay_hit_rate") > 0.6 * result.metric("lru_hit_rate")


def test_overlay_vs_reactive(benchmark):
    from repro.experiments.overlay_experiments import run_overlay_vs_reactive

    result = run_once(benchmark, run_overlay_vs_reactive, scale=Scale.DEFAULT)
    record(result)
    # Converged proactive views dominate the cold reactive baseline...
    assert result.metric("fixed_overlay") > result.metric("lru_cold")
    # ...and warm-starting LRU with them also beats starting cold.
    assert result.metric("lru_warm") > result.metric("lru_cold")
