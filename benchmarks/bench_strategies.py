"""Extension: neighbour-strategy shoot-out, overall vs rare requests.

Section 5.3.2 notes that the popularity algorithm of [30] "solves" the
rare-file list-contamination issue by implicitly inferring the popularity
of requested files.  This bench measures all four strategies inside the
full mixed workload, with a separate hit-rate for requests targeting
files with <= 3 replicas.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.extension_experiments import run_strategy_comparison


def test_strategy_comparison(benchmark):
    result = run_once(benchmark, run_strategy_comparison, scale=Scale.DEFAULT)
    record(result)
    # Popularity weighting leads on rare requests...
    assert result.metric("popularity_rare") >= result.metric("lru_rare")
    # ...scored strategies beat plain LRU overall...
    assert result.metric("history_overall") >= result.metric("lru_overall") - 0.02
    # ...and the random benchmark collapses on rare files.
    assert result.metric("random_rare") < 0.3 * result.metric("lru_rare")
