"""Figure 1: clients and shared files scanned per day.

Paper: daily scanned clients decline from 65k to 35k over the trace (a
crawler-bandwidth artifact).  The reproduction's crawler capacity decays
the same way, so the per-day client series must decline by a similar
ratio (35/65 ~ 0.54) while files-per-day stays of the same order.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure01


def test_figure01(benchmark):
    result = run_once(benchmark, run_figure01, scale=Scale.DEFAULT)
    record(result)
    assert 0.3 < result.metric("decline_ratio") < 0.85
    assert result.metric("clients_first_day") > result.metric("clients_last_day")
