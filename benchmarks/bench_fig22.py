"""Figure 22: distribution of query load among peers (LRU-5).

Paper: with all uploaders the heaviest peer answers 13,433 messages vs a
mean of 187; removing 10% of top uploaders cuts the max to 710 while the
mean only halves - load flattens much faster than capacity is lost.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure22


def test_figure22(benchmark):
    result = run_once(benchmark, run_figure22, scale=Scale.DEFAULT)
    record(result)
    # skew: the heaviest peer carries far more than the mean
    assert result.metric("max_load_all") > 5 * result.metric("mean_load_all")
    # removing top uploaders flattens the maximum faster than the mean
    max_drop = result.metric("max_load_all") / max(result.metric("max_load_minus10"), 1.0)
    mean_drop = result.metric("mean_load_all") / max(result.metric("mean_load_minus10"), 1e-9)
    assert max_drop > mean_drop
    # total requests shrink when uploaders are removed
    assert result.metric("requests_minus15") < result.metric("requests_all")
