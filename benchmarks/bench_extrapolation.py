"""Ablation: sensitivity to the extrapolation gap-fill rule.

The paper fills unobserved days with the *intersection* of neighbouring
observations ("pessimistic").  This bench recomputes the clustering
headline under intersection / union / carry-forward fills and asserts
the results are insensitive — the conservative choice does not manufacture
the clustering findings.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.extension_experiments import run_extrapolation_ablation


def test_extrapolation_ablation(benchmark):
    result = run_once(benchmark, run_extrapolation_ablation, scale=Scale.DEFAULT)
    record(result)
    p_values = [
        result.metric("intersection_p1"),
        result.metric("union_p1"),
        result.metric("previous_p1"),
    ]
    assert all(p > 10.0 for p in p_values)
    spread = max(p_values) - min(p_values)
    assert spread < 10.0  # the rule choice moves the headline by < 10 pts
