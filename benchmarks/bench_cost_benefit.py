"""Capstone: search economics — hit rate vs message cost per mechanism.

The design implication behind the paper's title: among server-less
mechanisms, semantic neighbour lists dominate unstructured search by an
order of magnitude in hits per message.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.cost_benefit import run_cost_benefit


def test_cost_benefit(benchmark):
    result = run_once(benchmark, run_cost_benefit, scale=Scale.DEFAULT)
    record(result)
    # Semantic search is an order of magnitude more message-efficient
    # than flooding at both list sizes.
    lru5_eff = result.metric("lru5_1hop_hit") / result.metric("lru5_1hop_msgs")
    flood_eff = result.metric("flooding_hit") / result.metric("flooding_msgs")
    assert lru5_eff > 10 * flood_eff
    # Two-hop buys hit rate at a message premium, but stays far cheaper
    # than flooding.
    assert result.metric("lru20_2hop_hit") > result.metric("lru20_1hop_hit")
    assert result.metric("lru20_2hop_msgs") < 0.5 * result.metric("flooding_msgs")
