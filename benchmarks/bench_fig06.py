"""Figure 6: cumulative distribution of file sizes by popularity.

Paper: ~40% of all files are < 1MB and ~50% in the 1-10MB MP3 range, but
among files with popularity >= 5, ~45% are > 600MB (DIVX movies) - the
network specializes in large files.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure06


def test_figure06(benchmark):
    result = run_once(benchmark, run_figure06, scale=Scale.DEFAULT)
    record(result)
    assert 0.25 < result.metric("p1_under_1mb") < 0.55
    assert result.metric("p5_over_600mb") > 0.2
    assert result.metric("p5_over_600mb") > 3 * result.metric("p1_over_600mb")
    assert result.metric("p10_over_600mb") >= result.metric("p5_over_600mb") - 0.05
