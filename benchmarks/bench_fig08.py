"""Figure 8: spread of the 6 most popular files over time.

Paper: popularity jumps suddenly and decays slowly; the most replicated
file peaks at under 0.7% of clients (372 of 53,476).  At reproduction
scale (27x fewer clients) the peak spread is proportionally larger, but
must remain a small fraction and show the rise-then-decay shape.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure08


def test_figure08(benchmark):
    result = run_once(benchmark, run_figure08, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("max_spread_fraction_any_file") < 0.15
    shaped = 0
    for series in result.series:
        if len(series) < 5:
            continue
        peak = series.ys.index(max(series.ys))
        if peak > 0 and series.ys[peak] > series.ys[0] and series.ys[-1] < series.ys[peak]:
            shaped += 1
    assert shaped >= 3
