"""Extension: AS-level PeerCache locality (Section 4.1's opportunity).

The paper: "a large proportion of the clients (54%) are connected to one
of five autonomous systems.  This leaves a clear opportunity to leverage
this tendency at AS level."  The bench quantifies the opportunity in
index mode (operator stores pointers, not content), isolates the share
attributable to geographic interest clustering via the geo_affinity=0
ablation, and reports classic content-cache hit rates for comparison.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.peercache_experiments import run_peercache


def test_peercache(benchmark):
    result = run_once(benchmark, run_peercache, scale=Scale.DEFAULT)
    record(result)
    # A substantial share of requests are servable inside the home AS...
    assert result.metric("index_hit_rate") > 0.2
    # ...and a large part of that locality comes from geographic interest
    # clustering, not just AS population size.
    assert result.metric("geo_clustering_gain") > 0.05
    assert result.metric("index_hit_rate") > result.metric(
        "index_hit_rate_no_geo"
    )
