"""Micro-benchmarks of the library's hot primitives.

Unlike the figure benches (which run an experiment once and record its
numbers), these use pytest-benchmark's repeated timing to watch for
performance regressions in the inner loops every simulation leans on:
MD4 hashing, Zipf sampling, the randomization swap, pair-overlap
counting, LRU list maintenance and one full small search run.
"""

import random

from repro.analysis.semantic import pair_overlaps
from repro.core.neighbours import LRUNeighbours
from repro.core.randomization import _SwapState, swap_once
from repro.core.search import SearchConfig, simulate_search
from repro.edonkey.md4 import md4_digest
from repro.trace.model import StaticTrace
from repro.util.rng import RngStream
from repro.util.zipf import ZipfSampler


def _clustered_trace(num_peers=60, files_per=25, communities=6) -> StaticTrace:
    caches = {}
    for peer in range(num_peers):
        community = peer % communities
        caches[peer] = frozenset(
            f"c{community}-f{(peer + i) % (files_per * 2)}" for i in range(files_per)
        )
    return StaticTrace(caches=caches)


def test_md4_throughput(benchmark):
    payload = bytes(range(256)) * 256  # 64 KiB
    digest = benchmark(md4_digest, payload)
    assert len(digest) == 16


def test_zipf_sampling(benchmark):
    sampler = ZipfSampler(100_000, 0.7, flat_head=5)
    rng = random.Random(1)

    def draw_batch():
        return [sampler.sample(rng) for _ in range(1000)]

    draws = benchmark(draw_batch)
    assert all(0 <= d < 100_000 for d in draws)


def test_randomization_swaps(benchmark):
    trace = _clustered_trace()
    rng = RngStream(0)

    def thousand_swaps():
        state = _SwapState(trace)
        done = 0
        for _ in range(1000):
            done += swap_once(state, rng)
        return done

    swaps = benchmark(thousand_swaps)
    assert swaps > 0


def test_pair_overlap_counting(benchmark):
    trace = _clustered_trace(num_peers=120)
    caches = dict(trace.caches)
    overlaps = benchmark(pair_overlaps, caches)
    assert overlaps


def test_lru_maintenance(benchmark):
    upload_rng = random.Random(7)
    uploads = [upload_rng.randrange(200) for _ in range(5000)]

    def churn_list():
        lru = LRUNeighbours(20)
        for uploader in uploads:
            lru.record_upload(uploader)
        return lru

    lru = benchmark(churn_list)
    assert len(lru) == 20


def test_small_search_run(benchmark):
    trace = _clustered_trace(num_peers=80, files_per=20)

    def run():
        return simulate_search(
            trace, SearchConfig(list_size=10, track_load=False, seed=3)
        )

    result = benchmark(run)
    assert result.rates.requests > 0
