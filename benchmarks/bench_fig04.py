"""Figure 4: distribution of clients per country.

Paper: FR 29%, DE 28%, ES 16%, US 5% - a large majority in Europe.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure04


def test_figure04(benchmark):
    result = run_once(benchmark, run_figure04, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("share_FR") == 0.29 or abs(result.metric("share_FR") - 0.29) < 0.04
    assert abs(result.metric("share_DE") - 0.28) < 0.04
    assert abs(result.metric("share_ES") - 0.16) < 0.04
    assert result.metric("share_US") < 0.10
