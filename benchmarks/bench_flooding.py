"""Section 3's flooding estimate and the unstructured-search baselines.

Paper: the most popular file is held by < 0.7% of peers, so a flooding
search contacts ~143 peers on average (1/spread).  At reproduction scale
the most popular file spreads further (fewer clients), so the analytic
contact count is proportionally smaller; the bench checks the analytic
estimate against measured flooding cost on the same trace.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.baseline_experiments import (
    run_flooding_estimate,
    run_mechanism_comparison,
)


def test_flooding_estimate(benchmark):
    result = run_once(benchmark, run_flooding_estimate, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("max_spread") < 0.15
    assert result.metric("analytic_contacts") > 5
    assert result.metric("flooding_hit_rate") > 0.9
    assert result.metric("flooding_mean_contacts") > 3


def test_mechanism_comparison(benchmark):
    result = run_once(benchmark, run_mechanism_comparison, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("semantic_hit_rate") > 0.3
    # flooding finds files but at a much higher per-query message cost
    assert result.metric("flooding_mean_contacts") > 20
