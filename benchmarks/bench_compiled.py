"""Benchmark of the compiled trace layer against the legacy string paths.

Every consumer of :class:`~repro.trace.compiled.CompiledTrace` keeps its
original string-keyed engine reachable with ``use_compiled=False`` (the
reference implementation the equivalence tests pin against).  This bench
times both engines on the same workload and *gates* the two kernels the
compiled layer exists for:

- ``pair_overlaps`` — the pairwise-overlap analysis kernel (Figures
  13-17), sparse-matrix / C-level counting vs the nested pair loop;
- ``weighted_requests`` — replica-weighted request generation (the
  search hot path), Fenwick-tree peer selection vs the O(n) scan.

Both must show at least ``MIN_SPEEDUP`` (2x) at the committed workload
(DEFAULT scale), or the bench exits non-zero.  End-to-end search and
uniform request generation are reported informationally (they spend most
of their time outside the swapped kernels, so their speedup is real but
smaller).  Results land in ``benchmarks/results/bench-compiled.json``
(machine-readable) and ``.txt`` (human-readable).

CI runs a SMALL-scale smoke with ``--no-gate`` (timing on shared runners
is too noisy to gate, but the smoke proves both engines still run); the
committed DEFAULT-scale results are regenerated with ``python
benchmarks/bench_compiled.py`` whenever the kernels change.
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis.semantic import pair_overlaps
from repro.core.requests import generate_requests
from repro.core.search import SearchConfig, simulate_search
from repro.runtime.cache import SHARED_TRACE_CACHE
from repro.runtime.scale import DEFAULT_SEED, Scale
from repro.trace.compiled import CompiledTrace
from repro.util.rng import RngStream

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_JSON = os.path.join(RESULTS_DIR, "bench-compiled.json")
RESULTS_TXT = os.path.join(RESULTS_DIR, "bench-compiled.txt")

#: Kernels whose compiled/legacy ratio is enforced, and the floor.
MIN_SPEEDUP = 2.0
GATED = ("pair_overlaps", "weighted_requests")


def _best_of(repeat, fn):
    """Best (minimum) wall time of ``repeat`` runs; returns (secs, result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def run_bench(scale: Scale = Scale.DEFAULT, seed: int = DEFAULT_SEED,
              repeat: int = 3) -> dict:
    """Time every kernel both ways and return the result document."""
    static = SHARED_TRACE_CACHE.static(scale, seed)
    static.invalidate_compiled()
    compile_secs, compiled = _best_of(1, lambda: CompiledTrace.from_static(static))
    # Re-prime the memo so the timed consumers don't recompile.
    assert static.compiled() is not None

    timings: dict = {
        "compile": {"secs": compile_secs},
    }

    def record(name, legacy_fn, compiled_fn, check=None):
        legacy_secs, legacy_out = _best_of(repeat, legacy_fn)
        compiled_secs, compiled_out = _best_of(repeat, compiled_fn)
        if check is not None:
            check(legacy_out, compiled_out)
        timings[name] = {
            "legacy_secs": legacy_secs,
            "compiled_secs": compiled_secs,
            "speedup": legacy_secs / compiled_secs,
        }

    caches = dict(static.caches)
    record(
        "pair_overlaps",
        lambda: pair_overlaps(caches, use_compiled=False),
        lambda: pair_overlaps(compiled),
        check=lambda a, b: _require(a == b, "pair_overlaps outputs differ"),
    )
    record(
        "weighted_requests",
        lambda: list(generate_requests(
            static, RngStream(seed, "bench"), weighted_by_cache=True,
            use_compiled=False,
        )),
        lambda: list(generate_requests(
            static, RngStream(seed, "bench"), weighted_by_cache=True,
        )),
        check=lambda a, b: _require(a == b, "request streams differ"),
    )
    record(
        "uniform_requests",
        lambda: list(generate_requests(
            static, RngStream(seed, "bench"), use_compiled=False,
        )),
        lambda: list(generate_requests(static, RngStream(seed, "bench"))),
        check=lambda a, b: _require(a == b, "request streams differ"),
    )
    config = SearchConfig(list_size=10, track_load=False, seed=seed)
    record(
        "search",
        lambda: simulate_search(static, config, use_compiled=False),
        lambda: simulate_search(static, config),
        check=lambda a, b: _require(
            a.rates == b.rates, "search results differ"
        ),
    )

    return {
        "benchmark": "bench-compiled",
        "scale": scale.name,
        "seed": seed,
        "repeat": repeat,
        "clients": len(static.caches),
        "replicas": static.total_replicas(),
        "min_speedup": MIN_SPEEDUP,
        "gated": list(GATED),
        "timings": timings,
    }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def gate_failures(doc: dict) -> list:
    """The gated kernels (if any) below the speedup floor."""
    return [
        name
        for name in doc["gated"]
        if doc["timings"][name]["speedup"] < doc["min_speedup"]
    ]


def render(doc: dict) -> str:
    lines = [
        f"bench-compiled  scale={doc['scale']} seed={doc['seed']} "
        f"clients={doc['clients']} replicas={doc['replicas']}",
        f"compile: {doc['timings']['compile']['secs'] * 1000:.1f} ms",
        "",
        f"{'kernel':<20}{'legacy':>10}{'compiled':>10}{'speedup':>9}  gate",
    ]
    for name, t in doc["timings"].items():
        if name == "compile":
            continue
        gate = f">={doc['min_speedup']:.0f}x" if name in doc["gated"] else "-"
        lines.append(
            f"{name:<20}{t['legacy_secs'] * 1000:>8.1f}ms"
            f"{t['compiled_secs'] * 1000:>8.1f}ms"
            f"{t['speedup']:>8.2f}x  {gate}"
        )
    return "\n".join(lines)


def write_results(doc: dict, json_path: str = RESULTS_JSON,
                  txt_path: str = RESULTS_TXT) -> None:
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(txt_path, "w") as fh:
        fh.write(render(doc) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="default", choices=["small", "default", "large"]
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", default=RESULTS_JSON)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report speedups without enforcing the floor (CI smoke)",
    )
    args = parser.parse_args(argv)

    doc = run_bench(
        scale=Scale[args.scale.upper()], seed=args.seed, repeat=args.repeat
    )
    txt_path = os.path.splitext(args.out)[0] + ".txt"
    write_results(doc, args.out, txt_path)
    print(render(doc))
    print(f"\nWrote {args.out}")

    failures = gate_failures(doc)
    if failures and not args.no_gate:
        print(
            f"FAIL: below the {doc['min_speedup']:.0f}x floor: "
            + ", ".join(failures)
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
