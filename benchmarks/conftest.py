"""Benchmark harness plumbing.

Each benchmark reproduces one table or figure of the paper at DEFAULT
scale, asserts its qualitative shape, and *records* the rendered result.
The rendered reports are printed in the terminal summary (so they land in
``bench_output.txt``) and written to ``benchmarks/results/<id>.txt``.

Benchmarks run the experiment exactly once (``pedantic`` with one round):
the measurements of interest are the reproduced numbers, not nanosecond
timings, and some experiments take tens of seconds.
"""

from __future__ import annotations

import os
from typing import List

_REPORTS: List[str] = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(result) -> None:
    """Record an ExperimentResult for the terminal summary + results dir.

    Writes the rendered text always, and a ``.csv`` with the raw series
    points when the result carries figure data (for external plotting).
    """
    text = result.render()
    _REPORTS.append(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    if result.series or result.metrics:
        result.write_csv(os.path.join(RESULTS_DIR, f"{result.experiment_id}.csv"))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for report in _REPORTS:
        terminalreporter.write_line(report)
        terminalreporter.write_line("")
