"""Benchmark of the out-of-core trace store against whole-file loading.

The store exists so long traces never have to be resident: analyses walk
one mmapped day segment at a time (``repro.analysis.streaming``) instead
of materialising every snapshot as Python objects (``load_trace``).  This
bench runs the same analysis workload — ``rank_evolution`` plus the
rng-subsampled ``overlap_evolution`` — both ways, each inside its own
child process, and compares:

- **peak RSS** (``ru_maxrss``), the number the store is designed to
  shrink: a full streaming pass over the 56-day DEFAULT-scale trace must
  use at least ``MIN_RSS_RATIO`` (4x) less memory than loading the whole
  JSONL trace, or the bench exits non-zero;
- **load latency**, reported informationally: time-to-first-data for the
  store (open + mmap the first segment) vs a full ``load_trace``;
- **output digests**, enforced unconditionally: both children must
  produce byte-identical analysis results, the equivalence contract the
  streaming engines are pinned to.

Each mode runs in a separate child process (this script re-invokes
itself with ``--child``) so the two peak-RSS measurements cannot
contaminate each other.  Results land in
``benchmarks/results/bench-store.json`` (machine-readable) and ``.txt``
(human-readable).

CI runs a SMALL-scale smoke with ``--no-gate`` (tiny traces fit in the
interpreter baseline, so the ratio is meaningless there, but the smoke
proves both paths still agree); the committed DEFAULT-scale results are
regenerated with ``python benchmarks/bench_store.py`` whenever the store
or the streaming engines change.
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_JSON = os.path.join(RESULTS_DIR, "bench-store.json")
RESULTS_TXT = os.path.join(RESULTS_DIR, "bench-store.txt")

#: Floor on (whole-trace peak RSS) / (streaming peak RSS).
MIN_RSS_RATIO = 4.0

#: Analysis workload shared by both children (see ``_digest_series``).
TOP_K = 5
OVERLAP_LEVELS = [1, 2, 5, 10]
MAX_PAIRS = 200
OVERLAP_SEED = 1


def _digest_series(series) -> str:
    """Canonical digest of a list of Series: any divergence between the
    in-memory and streaming engines shows up as a digest mismatch."""
    payload = json.dumps(
        [[s.name, list(s.xs), list(s.ys)] for s in series]
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _reset_peak_rss() -> None:
    """Reset this process's RSS high-water mark.

    On Linux the high-water mark is inherited across ``fork``, so a child
    spawned from a parent that already held the whole trace would report
    the *parent's* peak.  Writing ``5`` to ``/proc/self/clear_refs``
    makes ``VmHWM`` track only allocations from this point on.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:  # pragma: no cover - non-Linux or restricted /proc
        pass


def _peak_rss_kb() -> int:
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def child_inmem(trace_path: str) -> dict:
    """Whole-file mode: load every snapshot, then analyse in memory."""
    from repro.analysis.popularity import rank_evolution
    from repro.analysis.semantic import overlap_evolution
    from repro.trace.io import load_trace

    start = time.perf_counter()
    trace = load_trace(trace_path)
    load_secs = time.perf_counter() - start

    start = time.perf_counter()
    first = trace.days()[0]
    series = rank_evolution(trace, reference_day=first, top_k=TOP_K)
    series += overlap_evolution(
        trace,
        overlap_levels=OVERLAP_LEVELS,
        max_pairs_per_level=MAX_PAIRS,
        seed=OVERLAP_SEED,
    )
    analysis_secs = time.perf_counter() - start
    return {
        "load_secs": load_secs,
        "analysis_secs": analysis_secs,
        "peak_rss_kb": _peak_rss_kb(),
        "digest": _digest_series(series),
    }


def child_streaming(store_path: str) -> dict:
    """Out-of-core mode: stream mmapped day segments from the store."""
    from repro.analysis.streaming import (
        streaming_overlap_evolution,
        streaming_rank_evolution,
    )
    from repro.trace.store import open_store

    start = time.perf_counter()
    store = open_store(store_path)
    first = store.days()[0]
    store.segment(first)  # time-to-first-data: manifest + one mmap
    load_secs = time.perf_counter() - start

    start = time.perf_counter()
    series = streaming_rank_evolution(store, reference_day=first, top_k=TOP_K)
    series += streaming_overlap_evolution(
        store,
        overlap_levels=OVERLAP_LEVELS,
        max_pairs_per_level=MAX_PAIRS,
        seed=OVERLAP_SEED,
    )
    analysis_secs = time.perf_counter() - start
    return {
        "load_secs": load_secs,
        "analysis_secs": analysis_secs,
        "peak_rss_kb": _peak_rss_kb(),
        "digest": _digest_series(series),
    }


def _run_child(mode: str, data_path: str) -> dict:
    """Run one measurement in a fresh interpreter so peak RSS is clean."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(src, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", mode, data_path],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


def run_bench(scale=None, seed: int | None = None, workdir: str = ".") -> dict:
    """Generate the workload, convert it, measure both modes."""
    from repro.runtime import DEFAULT_SEED, Scale, workload_config
    from repro.trace.io import convert_trace_file_to_store, save_trace
    from repro.workload.generator import SyntheticWorkloadGenerator

    scale = scale if scale is not None else Scale.DEFAULT
    seed = seed if seed is not None else DEFAULT_SEED
    config = workload_config(scale)
    trace = SyntheticWorkloadGenerator(config=config, seed=seed).generate()

    trace_path = os.path.join(workdir, "bench-store.jsonl.gz")
    store_path = os.path.join(workdir, "bench-store.store")
    save_trace(trace, trace_path)
    snapshots = trace.num_snapshots
    del trace

    start = time.perf_counter()
    convert_trace_file_to_store(trace_path, store_path).close()
    convert_secs = time.perf_counter() - start

    inmem = _run_child("inmem", trace_path)
    streaming = _run_child("streaming", store_path)
    if inmem["digest"] != streaming["digest"]:
        raise AssertionError(
            "streaming analysis diverged from the in-memory engines: "
            f"{streaming['digest']} != {inmem['digest']}"
        )

    return {
        "benchmark": "bench-store",
        "scale": scale.name,
        "seed": seed,
        "clients": config.num_clients,
        "files": config.num_files,
        "days": config.days,
        "snapshots": snapshots,
        "trace_bytes": os.path.getsize(trace_path),
        "store_bytes": sum(
            os.path.getsize(os.path.join(store_path, name))
            for name in os.listdir(store_path)
        ),
        "convert_secs": convert_secs,
        "min_rss_ratio": MIN_RSS_RATIO,
        "modes": {"inmem": inmem, "streaming": streaming},
        "rss_ratio": inmem["peak_rss_kb"] / streaming["peak_rss_kb"],
    }


def gate_failures(doc: dict) -> list:
    """Non-empty iff peak RSS did not shrink by the required factor."""
    if doc["rss_ratio"] < doc["min_rss_ratio"]:
        return [
            f"rss_ratio {doc['rss_ratio']:.2f}x < {doc['min_rss_ratio']:.0f}x"
        ]
    return []


def render(doc: dict) -> str:
    modes = doc["modes"]
    lines = [
        f"bench-store  scale={doc['scale']} seed={doc['seed']} "
        f"clients={doc['clients']} files={doc['files']} days={doc['days']} "
        f"snapshots={doc['snapshots']}",
        f"trace file: {doc['trace_bytes'] / 1e6:.1f} MB   "
        f"store: {doc['store_bytes'] / 1e6:.1f} MB   "
        f"convert: {doc['convert_secs']:.2f} s",
        "",
        f"{'mode':<12}{'load':>10}{'analysis':>10}{'peak RSS':>12}",
    ]
    for name in ("inmem", "streaming"):
        m = modes[name]
        lines.append(
            f"{name:<12}{m['load_secs']:>9.2f}s{m['analysis_secs']:>9.2f}s"
            f"{m['peak_rss_kb'] / 1024:>10.1f}MB"
        )
    lines += [
        "",
        f"digest: {modes['inmem']['digest']} (both modes)",
        f"peak-RSS ratio: {doc['rss_ratio']:.2f}x "
        f"(gate >={doc['min_rss_ratio']:.0f}x)",
    ]
    return "\n".join(lines)


def write_results(doc: dict, json_path: str = RESULTS_JSON,
                  txt_path: str = RESULTS_TXT) -> None:
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(txt_path, "w") as fh:
        fh.write(render(doc) + "\n")


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="default", choices=["tiny", "small", "default"]
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default=RESULTS_JSON)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report the RSS ratio without enforcing the floor (CI smoke)",
    )
    parser.add_argument(
        "--child",
        choices=["inmem", "streaming"],
        help=argparse.SUPPRESS,  # internal: run one measurement and exit
    )
    parser.add_argument("data", nargs="?", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        _reset_peak_rss()  # measure this child, not the inherited peak
        fn = child_inmem if args.child == "inmem" else child_streaming
        print(json.dumps(fn(args.data)))
        return 0

    from repro.runtime import Scale

    with tempfile.TemporaryDirectory(prefix="bench-store-") as workdir:
        doc = run_bench(
            scale=Scale[args.scale.upper()], seed=args.seed, workdir=workdir
        )
    txt_path = os.path.splitext(args.out)[0] + ".txt"
    write_results(doc, args.out, txt_path)
    print(render(doc))
    print(f"\nWrote {args.out}")

    failures = gate_failures(doc)
    if failures and not args.no_gate:
        print("FAIL: " + ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
