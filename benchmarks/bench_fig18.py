"""Figure 18: semantic-search hit rate vs number of neighbours.

Paper: at 20 neighbours LRU reaches 41% and History 47%; randomly chosen
neighbour lists do far worse at every size.  The reproduction asserts the
band and the strategy ordering.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure18


def test_figure18(benchmark):
    result = run_once(benchmark, run_figure18, scale=Scale.DEFAULT)
    record(result)
    lru20 = result.metric("lru@20")
    assert 0.30 < lru20 < 0.65
    assert result.metric("history@20") > 0.9 * lru20
    assert result.metric("random@20") < 0.5 * lru20
    # hit rate grows with list size
    lru = result.series_named("LRU")
    assert lru.y_at(200) > lru.y_at(5)
