"""Extension: semantic search under peer churn.

The availability studies the paper cites (e.g. the Overnet crawl) show
significant peer turnover; a practical server-less design must tolerate
offline neighbours.  This bench sweeps per-request peer availability and
asserts graceful degradation: the hit rate falls roughly with the online
probability, it does not collapse.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.extension_experiments import run_availability_sweep


def test_availability_sweep(benchmark):
    result = run_once(benchmark, run_availability_sweep, scale=Scale.DEFAULT)
    record(result)
    # Monotone degradation...
    assert (
        result.metric("hit@1")
        >= result.metric("hit@0.7")
        >= result.metric("hit@0.3")
    )
    # ...but graceful: at 50% availability more than half the full-
    # availability hit rate survives.
    assert result.metric("hit@0.5") > 0.5 * result.metric("hit@1")
    # Only a bounded share of requests become truly unresolvable.
    assert result.metric("unresolvable@0.5") < 0.6
