"""Figure 2: new and total files discovered per day.

Paper: even after a month the crawler still discovers ~100k new files per
day.  The scaled reproduction must keep discovering new files on the last
day and show a monotone cumulative-total curve.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure02


def test_figure02(benchmark):
    result = run_once(benchmark, run_figure02, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("new_files_last_day") > 0
    assert result.metric("new_files_per_client_per_day") > 0
