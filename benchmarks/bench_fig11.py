"""Figure 11: CDF of the fraction of sources in the home country.

Paper: geographic clustering is much stronger for unpopular files - e.g.
50% of files with average popularity >= 20 have all sources in one
country, vs only 10% for popularity >= 50.  The reproduction asserts the
ordering: lower popularity class => more home-concentrated.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure11


def test_figure11(benchmark):
    result = run_once(benchmark, run_figure11, scale=Scale.DEFAULT)
    record(result)
    rare = result.metric("median_home_pct_p0.1")
    popular = result.metrics.get("median_home_pct_p1.2")
    assert rare > 50.0
    if popular is not None:
        assert rare >= popular
    assert result.metric("all_home_fraction_p0.1") > 0.3
