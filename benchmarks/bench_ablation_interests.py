"""Ablation: disable the interest model and watch the paper's effects die.

DESIGN.md calls out the interest-category workload model as the central
design decision: semantic and geographic clustering both emerge from it.
This bench disables it (interest_loyalty=0: all draws go through the
global popularity distribution) and asserts that the headline effects
disappear:

- Figure 18's LRU advantage over Random collapses;
- Figure 21's semantic share (real minus randomized hit rate) vanishes.
"""

import dataclasses

from benchmarks.conftest import record, run_once
from repro.core.randomization import randomize_trace
from repro.core.search import SearchConfig, simulate_search
from repro.runtime.scale import DEFAULT_SEED, Scale, workload_config
from repro.experiments.result import ExperimentResult
from repro.util.rng import RngStream
from repro.workload.generator import SyntheticWorkloadGenerator


def _build(interest_loyalty):
    config = dataclasses.replace(
        workload_config(Scale.DEFAULT), interest_loyalty=interest_loyalty
    )
    generator = SyntheticWorkloadGenerator(config=config, seed=DEFAULT_SEED)
    static = generator.generate_static()
    aliases = [p.meta.client_id for p in generator.profiles if p.alias_of is not None]
    return static.without_clients(aliases)


def _hit(trace, strategy="lru", list_size=10):
    return simulate_search(
        trace,
        SearchConfig(
            list_size=list_size, strategy=strategy, track_load=False, seed=DEFAULT_SEED
        ),
    ).hit_rate


def run_ablation():
    with_interests = _build(interest_loyalty=0.9)
    without_interests = _build(interest_loyalty=0.0)

    metrics = {}
    for label, trace in (("on", with_interests), ("off", without_interests)):
        lru = _hit(trace, "lru")
        rnd = _hit(trace, "random")
        randomized = randomize_trace(trace, RngStream(7, "ablation"))
        metrics[f"lru10_{label}"] = lru
        metrics[f"random10_{label}"] = rnd
        metrics[f"semantic_share_{label}"] = lru - _hit(randomized, "lru")

    return ExperimentResult(
        experiment_id="ablation-interests",
        title="Interest model ablation (loyalty 0.9 vs 0.0)",
        metrics=metrics,
        notes="with interests off, LRU~Random and the randomization gap "
        "closes: the planted interest structure is what the paper's "
        "effects measure",
    )


def test_ablation_interests(benchmark):
    result = run_once(benchmark, run_ablation)
    record(result)
    # Without interests, LRU still beats Random somewhat (generosity and
    # the popular head remain learnable), but the gap narrows...
    on_gap = result.metric("lru10_on") - result.metric("random10_on")
    off_gap = result.metric("lru10_off") - result.metric("random10_off")
    assert on_gap > 1.5 * max(off_gap, 0.01)
    # ...and the *semantic share* -- hit rate lost to generosity/popularity-
    # preserving randomization -- collapses by an order of magnitude.
    assert result.metric("semantic_share_on") > 5 * max(
        result.metric("semantic_share_off"), 0.01
    )
