"""Figure 20: LRU hit rate without the most popular files.

Paper: the hit ratio *increases* when popular files are removed - rare
files are more clustered - and the increase is largest for short lists
(~30% -> ~50% at 5 neighbours after removing 30% of popular files).
Note the scale caveat recorded in EXPERIMENTS.md: at reproduction scale
the 30% cut leaves only a few percent of requests, so the bench asserts
the rise at the 15% cut and non-collapse at 30%.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure20


def test_figure20(benchmark):
    result = run_once(benchmark, run_figure20, scale=Scale.DEFAULT)
    record(result)
    base = result.series_named("all files")
    minus15 = result.series_named("without 15% popular")
    assert minus15.y_at(5) > base.y_at(5)
    # increase is largest at short lists
    gain5 = minus15.y_at(5) - base.y_at(5)
    gain100 = minus15.y_at(100) - base.y_at(100)
    assert gain5 > gain100
