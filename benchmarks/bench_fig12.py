"""Figure 12: CDF of the fraction of sources in the home AS.

Paper: same ordering as Figure 11 at autonomous-system granularity, with
weaker concentration (an AS is smaller than a country).
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure11, run_figure12


def test_figure12(benchmark):
    result = run_once(benchmark, run_figure12, scale=Scale.DEFAULT)
    record(result)
    rare_as = result.metric("median_home_pct_p0.1")
    popular_as = result.metrics.get("median_home_pct_p1.2")
    if popular_as is not None:
        assert rare_as >= popular_as
    # AS-level concentration weaker than country-level.
    country = run_figure11(scale=Scale.DEFAULT)
    assert rare_as <= country.metric("median_home_pct_p0.1") + 1e-9
