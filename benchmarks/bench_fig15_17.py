"""Figures 15-17: evolution of pairwise cache overlap over time.

Paper: pairs starting with 1-10 common files decay smoothly; pairs with
large initial overlap hold plateaux for weeks - interest-based proximity
persists even though caches churn ~5 files/day.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure15_17


def test_figure15_17(benchmark):
    result = run_once(benchmark, run_figure15_17, scale=Scale.DEFAULT)
    record(result)
    high = result.metric("high_overlap_mean_retention")
    assert high > 0.35
    assert len(result.series) >= 5
