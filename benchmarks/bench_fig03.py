"""Figure 3: files and non-empty caches per day after extrapolation.

Paper: the dynamic analyses use days with >= 1M files in >= 7k non-empty
caches.  The reproduction must provide a comparable plateau (scaled) on
every analysis day.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure03


def test_figure03(benchmark):
    result = run_once(benchmark, run_figure03, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("min_daily_files") > 1000
    assert result.metric("min_daily_non_empty_caches") > 30
