"""Figure 21: hit rate vs number of swappings on the randomized trace.

Paper: LRU-10 hit rate falls from 35% on the real trace to 5% once the
trace is fully randomized; the ~30-point gap is attributable only to
genuine semantic proximity (generosity and popularity are preserved by
the randomization).
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure21


def test_figure21(benchmark):
    result = run_once(benchmark, run_figure21, scale=Scale.DEFAULT)
    record(result)
    assert 0.25 < result.metric("hit_rate_original") < 0.60
    assert result.metric("hit_rate_fully_randomized") < 0.5 * result.metric(
        "hit_rate_original"
    )
    assert result.metric("semantic_share") > 0.15
    series = result.series[0]
    # decreasing trend along the swap schedule
    assert series.ys[-1] < series.ys[0]
    assert min(series.ys) >= 0.0
