"""Figures 9 and 10: evolution of the ranks of top-5 files.

Paper: the ranks of popular files remain quite stable over time even as
replica counts decay; early-trace tops drift down gradually.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure09_10


def test_figure09_10(benchmark):
    result = run_once(benchmark, run_figure09_10, scale=Scale.DEFAULT)
    record(result)
    # Top files stay in (roughly) the upper ranks: mean final rank far
    # above the tail of a ~20k-file catalogue.
    assert result.metric("mid_top5_mean_final_rank") < 500
    assert len(result.series) == 10
