"""Extension: semantic links in the live eDonkey client.

The paper's conclusion announces this exact system ("implementation of
semantic links in an eDonkey client, MLdonkey").  The bench runs a
protocol-level network of semantic clients for ten days and measures the
server-avoidance rate — the share of lookups the first tier never sees.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.live_semantic import run_live_semantic


def test_live_semantic_client(benchmark):
    result = run_once(
        benchmark,
        run_live_semantic,
        scale=Scale.SMALL,
        days=10,
        num_clients=200,
    )
    record(result)
    assert result.metric("lookups") > 500
    # A meaningful share of lookups bypass the server entirely.  The rate
    # is lower than Section 5's simulated hit rates because live requests
    # include files nobody (reachable) shares yet — the protocol-level
    # realism the statistical simulation abstracts away.
    assert result.metric("overall_server_avoidance") > 0.08
    # The lists warm up: the best day far exceeds the cold first day.
    assert result.metric("peak_day_avoidance") > 2 * result.metric(
        "first_day_avoidance"
    )
