"""Figure 5: file replication against rank (log-log), several days.

Paper: after a small flat head, the rank/replication curve follows a
linear trend on a log-log plot, consistently across days.  The bench fits
a power-law slope per day and asserts it is positive, stable, and fits
well.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure05
from repro.util.zipf import fit_zipf_slope


def test_figure05(benchmark):
    result = run_once(benchmark, run_figure05, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("days_plotted") >= 4
    assert 0.2 < result.metric("mean_zipf_slope") < 1.5
    # every day individually fits a decaying power law
    for series in result.series:
        slope, r2 = fit_zipf_slope(series.xs, series.ys, skip_head=5)
        assert slope > 0.15
        assert r2 > 0.7
