"""Figure 13: P(another common file | n files in common).

Paper: the probability climbs steeply with n (two clients with a handful
of common files will almost surely share another), and rare audio files
cluster more than popular ones.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure13


def test_figure13(benchmark):
    result = run_once(benchmark, run_figure13, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("all_p_at_5") > result.metric("all_p_at_1")
    assert result.metric("all_p_at_5") > 60.0
    if "popular_audio_p_at_1" in result.metrics:
        assert (
            result.metric("rare_audio_p_at_1")
            > result.metric("popular_audio_p_at_1") - 15.0
        )
