"""Figure 23: two-hop semantic search.

Paper: querying neighbours' neighbours raises the hit rate to over 55%
at 20 neighbours (vs 41% one-hop); the transitivity of the semantic
relation survives removing the most generous uploaders.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure23


def test_figure23(benchmark):
    result = run_once(benchmark, run_figure23, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("two_hop@20") > result.metric("one_hop@20") + 0.05
    assert result.metric("two_hop@20") > 0.45
    assert result.metric("two_hop@5") > 0.2
    # two-hop minus generous uploaders still beats nothing
    without = result.series_named("2 hops, without top 15%")
    assert without.y_at(20) > 10.0  # percent
