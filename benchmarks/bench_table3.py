"""Table 3: combined influence of generous uploaders and popular files.

Paper row "LRU": 28/34/41% at 5/10/20 neighbours; removing uploaders
lowers the hit ratio, removing popular files raises it - the two act in
opposite directions and roughly cancel when combined.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_table3


def test_table3(benchmark):
    result = run_once(benchmark, run_table3, scale=Scale.DEFAULT)
    record(result)
    base5 = result.metric("base@5")
    assert 0.15 < base5 < 0.45
    # Removing uploaders lowers the hit ratio (clear at 10/20 neighbours
    # and at the 15% level; the 5%-at-5-neighbours cell is within noise).
    assert result.metric("no_top_5_uploaders@10") < result.metric("base@10")
    assert result.metric("no_top_15_uploaders@5") < base5
    # Removing popular files raises it.
    assert result.metric("no_5_popular_files@5") > base5
    assert result.metric("no_15_popular_files@5") > result.metric("no_5_popular_files@5") - 0.02
    # Combined 5% ablations sit between the two pure effects.
    both5 = result.metric("no_both_5@5")
    assert result.metric("no_top_5_uploaders@5") - 0.05 <= both5
    assert both5 <= result.metric("no_5_popular_files@5") + 0.05
    # NOTE: the 15% combined row collapses to ~0 requests at reproduction
    # scale (see EXPERIMENTS.md) and is reported but not asserted.
