"""Figure 19: LRU hit rate without the most generous uploaders.

Paper: removing the top 5-15% uploaders costs 10-20 points, yet > 30%
hit rate survives at 20 neighbours - semantic clustering is not an
artefact of a few generous peers.
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale, run_figure19


def test_figure19(benchmark):
    result = run_once(benchmark, run_figure19, scale=Scale.DEFAULT)
    record(result)
    assert result.metric("minus15@20") < result.metric("all@20")
    assert result.metric("minus15@20") > 0.12
