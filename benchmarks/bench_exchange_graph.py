"""Extension: exchange-graph structure of a search run.

Section 6 cites server-log analyses reporting ~20% bidirectional edges
in the eDonkey exchange graph and cliques of 100+ clients.  This bench
records the exchange graph produced by the semantic-search simulation at
DEFAULT scale and asserts the same structural signatures (scaled).
"""

from benchmarks.conftest import record, run_once
from repro.experiments import Scale
from repro.experiments.extension_experiments import run_exchange_graph


def test_exchange_graph(benchmark):
    result = run_once(benchmark, run_exchange_graph, scale=Scale.DEFAULT)
    record(result)
    # Reciprocity in the band the server logs report (~20%, +-15 points).
    assert 0.05 < result.metric("reciprocity") < 0.5
    # Generous uploaders dominate out-degrees.
    assert result.metric("degree_skew") > 2.0
    # Dense semantic communities exist (scaled analogue of the cliques).
    assert result.metric("largest_core") >= 8
    assert result.metric("clustering") > 0.05
