"""Legacy shim so ``pip install -e .`` works without the ``wheel`` package.

The environment this repo targets is offline; PEP 660 editable installs
need ``wheel``, which may be absent.  With this shim, pip falls back to the
setuptools ``develop`` path (``pip install -e . --no-use-pep517`` also
works explicitly).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
